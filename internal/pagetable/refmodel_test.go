package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestReferenceModelProperty runs a long random sequence of Map, Map2M,
// Unmap, Protect and Walk operations against a trivial reference model
// (a Go map from VPN to (frame, flags)) and requires the table to agree
// with the model after every step. This is the strongest correctness
// check for the radix structure: any mis-indexed level, wrong span, or
// botched node teardown diverges from the model quickly.
func TestReferenceModelProperty(t *testing.T) {
	fn := func(seed uint64) bool {
		clock := &sim.Clock{}
		params := sim.DefaultParams()
		bud, err := buddy.New(clock, &params, 0, 1<<20)
		if err != nil {
			return false
		}
		cpu := sim.MachineOf(clock, &params).BootCPU()
		tbl, err := New(cpu, &params, bud, Levels4)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)

		type mapping struct {
			frame mem.Frame
			flags Flags
			huge  bool
		}
		model := make(map[uint64]mapping) // key: base VPN of the mapping

		// Address pool: a few 2 MiB-aligned regions plus scattered 4K
		// pages, so huge and small mappings interact.
		randVA := func() mem.VirtAddr {
			region := mem.VirtAddr(rng.Intn(8)) << 30
			return region + mem.VirtAddr(rng.Intn(4096))*mem.FrameSize
		}
		randHugeVA := func() mem.VirtAddr {
			region := mem.VirtAddr(rng.Intn(8)) << 30
			return region + mem.VirtAddr(rng.Intn(8))*(2<<20)
		}
		overlapsModel := func(vpn, span uint64) bool {
			for base, m := range model {
				msp := uint64(1)
				if m.huge {
					msp = 512
				}
				if vpn < base+msp && base < vpn+span {
					return true
				}
			}
			return false
		}

		for step := 0; step < 400; step++ {
			switch rng.Intn(5) {
			case 0: // map 4K
				va := randVA()
				frame := mem.Frame(rng.Intn(1 << 20))
				err := tbl.Map(cpu, va, frame, FlagRead|FlagWrite)
				if overlapsModel(va.VPN(), 1) {
					if err == nil {
						t.Logf("step %d: double map of %#x accepted", step, uint64(va))
						return false
					}
				} else if err != nil {
					t.Logf("step %d: map failed: %v", step, err)
					return false
				} else {
					model[va.VPN()] = mapping{frame, FlagRead | FlagWrite, false}
				}
			case 1: // map 2M
				va := randHugeVA()
				frame := mem.Frame(rng.Intn(1<<11)) * 512
				err := tbl.Map2M(cpu, va, frame, FlagRead)
				if overlapsModel(va.VPN(), 512) {
					if err == nil {
						t.Logf("step %d: overlapping 2M map accepted", step)
						return false
					}
				} else if err != nil {
					t.Logf("step %d: 2M map failed: %v", step, err)
					return false
				} else {
					model[va.VPN()] = mapping{frame, FlagRead, true}
				}
			case 2: // unmap a random live mapping
				for base := range model {
					va := mem.VirtAddr(base) << mem.FrameShift
					frame, span, err := tbl.Unmap(cpu, va)
					if err != nil {
						t.Logf("step %d: unmap failed: %v", step, err)
						return false
					}
					m := model[base]
					wantSpan := uint64(1)
					if m.huge {
						wantSpan = 512
					}
					if frame != m.frame || span != wantSpan {
						t.Logf("step %d: unmap returned (%d,%d), want (%d,%d)", step, frame, span, m.frame, wantSpan)
						return false
					}
					delete(model, base)
					break
				}
			case 3: // protect a random live mapping
				for base, m := range model {
					va := mem.VirtAddr(base) << mem.FrameShift
					newFlags := m.flags ^ FlagWrite
					if err := tbl.Protect(cpu, va, newFlags); err != nil {
						t.Logf("step %d: protect failed: %v", step, err)
						return false
					}
					m.flags = newFlags
					model[base] = m
					break
				}
			case 4: // verify a random probe against the model
				va := randVA()
				pa, flags, ok := tbl.Lookup(va)
				var want *mapping
				var base uint64
				for b, m := range model {
					span := uint64(1)
					if m.huge {
						span = 512
					}
					if va.VPN() >= b && va.VPN() < b+span {
						mm := m
						want, base = &mm, b
						break
					}
				}
				if (want != nil) != ok {
					t.Logf("step %d: lookup(%#x) ok=%v, model=%v", step, uint64(va), ok, want != nil)
					return false
				}
				if ok {
					off := (va.VPN() - base) * mem.FrameSize
					wantPA := want.frame.Addr() + mem.PhysAddr(off) + mem.PhysAddr(va.PageOffset())
					if pa != wantPA || flags != want.flags {
						t.Logf("step %d: lookup(%#x) = (%#x,%v), want (%#x,%v)",
							step, uint64(va), uint64(pa), flags, uint64(wantPA), want.flags)
						return false
					}
				}
			}
			if step%100 == 0 {
				if err := tbl.CheckInvariants(); err != nil {
					t.Logf("step %d: %v", step, err)
					return false
				}
			}
		}
		// Full sweep: every model entry must be present and correct.
		for base, m := range model {
			va := mem.VirtAddr(base) << mem.FrameShift
			pa, flags, ok := tbl.Lookup(va)
			if !ok || pa.Frame() != m.frame || flags != m.flags {
				t.Logf("final sweep: mapping at %#x diverged", uint64(va))
				return false
			}
		}
		// Teardown releases every node.
		if err := tbl.Destroy(); err != nil {
			return false
		}
		return bud.FreeFrames() == 1<<20
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
