package pagetable

import (
	"testing"

	"repro/internal/mem"
)

// The page walk is the hottest loop of the page-granular experiments;
// it must not allocate host memory per simulated translation.
func TestWalkAllocFree(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	va := mem.VirtAddr(0x7f0000001000)
	if err := tbl.Map(cpu, va, 1234, FlagRead|FlagWrite); err != nil {
		t.Fatalf("Map: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, _, ok := tbl.Walk(cpu, va); !ok {
			t.Fatal("walk missed a mapped page")
		}
	})
	if allocs != 0 {
		t.Fatalf("Walk allocates %v objects per translation, want 0", allocs)
	}
}

// Map/Unmap churn at a single address must run entirely off the
// table's recycled-node pool after the first cycle.
func TestMapUnmapChurnAllocFree(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	va := mem.VirtAddr(0x7f0000001000)
	// Prime the spare-node pool with one full cycle.
	if err := tbl.Map(cpu, va, 1, FlagRead); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if _, _, err := tbl.Unmap(cpu, va); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tbl.Map(cpu, va, 1, FlagRead); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tbl.Unmap(cpu, va); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("map/unmap churn allocates %v objects per cycle, want 0", allocs)
	}
}
