package pagetable

import (
	"testing"

	"repro/internal/mem"
)

// TestFreedNodesAreScrubbed maps and unmaps enough to churn node
// structs through the spare pool, then asserts every recycled node is
// fully zeroed — a spare retaining entries would leak frame numbers
// and flags into its next table.
func TestFreedNodesAreScrubbed(t *testing.T) {
	tbl, _, cpu := newTable(t, Levels4)
	base := mem.VirtAddr(0x40000000000)
	for p := uint64(0); p < 64; p++ {
		if err := tbl.Map(cpu, base+mem.VirtAddr(p*mem.FrameSize), mem.Frame(100+p), FlagRead|FlagWrite); err != nil {
			t.Fatal(err)
		}
	}
	for p := uint64(0); p < 64; p++ {
		if _, _, err := tbl.Unmap(cpu, base+mem.VirtAddr(p*mem.FrameSize)); err != nil {
			t.Fatal(err)
		}
	}
	if len(tbl.spare) == 0 {
		t.Fatal("unmap recycled no nodes")
	}
	if err := tbl.SpareScrubbed(); err != nil {
		t.Fatalf("recycled node not scrubbed: %v", err)
	}
}

// TestSpareScrubbedDetectsPoison is the negative control.
func TestSpareScrubbedDetectsPoison(t *testing.T) {
	tbl, _, _ := newTable(t, Levels4)
	poisoned := &node{level: 2, present: 1}
	poisoned.entries[17] = entry{frame: 99}
	tbl.spare = append(tbl.spare, poisoned)
	if err := tbl.SpareScrubbed(); err == nil {
		t.Fatal("poisoned spare node went undetected")
	}
}
