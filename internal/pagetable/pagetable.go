// Package pagetable implements an x86-64-style radix page table with 4
// (optionally 5) levels of 512-entry nodes, 4 KiB base pages and 2 MiB /
// 1 GiB huge leaf entries.
//
// The package reproduces the costs the paper attributes to page-based
// translation: creating a mapping writes one entry *per page* (plus
// node allocations), and a hardware walk references one node per level.
// It also implements the two O(1) mechanisms from the paper:
//
//   - subtree sharing (§3.1/§4.2, Figure 3/8): an aligned interior entry
//     of one table can point at a node owned by another table, so a
//     whole 2 MiB or 1 GiB mapping is installed with a single entry
//     write; and
//   - pre-created page tables (§3.1): a table can be built once for a
//     file and later linked into any number of processes.
//
// Node frames are allocated from the buddy allocator so that page-table
// memory is part of the machine's physical accounting.
package pagetable

import (
	"fmt"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Geometry constants.
const (
	// EntriesPerNode is the fan-out of every node (512 = 4 KiB of
	// 8-byte entries).
	EntriesPerNode = 512
	entryIndexBits = 9

	// Levels4 and Levels5 select 48-bit or 57-bit virtual addressing.
	Levels4 = 4
	Levels5 = 5
)

// NestedWalkRefs returns the number of memory references a two-
// dimensional (virtualized) page walk performs with the given guest
// and host table depths: each of the guest's levels plus the final
// guest physical address must itself be translated through the host
// table. For 5-level-on-5-level this is 35 — the figure the paper
// cites for Intel's 5-level EPT ("requires up to 35 memory references
// in virtualized systems").
func NestedWalkRefs(guestLevels, hostLevels int) int {
	return (guestLevels+1)*(hostLevels+1) - 1
}

// Flags are the protection bits of a mapping.
type Flags uint8

const (
	// FlagRead marks the page readable (present implies readable on
	// x86; the simulator keeps it explicit).
	FlagRead Flags = 1 << iota
	// FlagWrite marks the page writable.
	FlagWrite
	// FlagExec marks the page executable.
	FlagExec
	// FlagUser marks the page accessible from user mode.
	FlagUser
	// FlagCOW marks a copy-on-write page: readable now, write faults.
	FlagCOW
)

// String renders the flags as an "rwxuc" mask.
func (f Flags) String() string {
	b := []byte("-----")
	if f&FlagRead != 0 {
		b[0] = 'r'
	}
	if f&FlagWrite != 0 {
		b[1] = 'w'
	}
	if f&FlagExec != 0 {
		b[2] = 'x'
	}
	if f&FlagUser != 0 {
		b[3] = 'u'
	}
	if f&FlagCOW != 0 {
		b[4] = 'c'
	}
	return string(b)
}

// entry is one slot of a node. Leaf entries carry a frame; interior
// entries carry a child node pointer.
type entry struct {
	present bool
	huge    bool // leaf at level 2 (2 MiB) or level 3 (1 GiB)
	frame   mem.Frame
	flags   Flags
	child   *node
}

// node is one 512-entry page-table page.
type node struct {
	level   int // 1 = leaf page table; root is at Table.levels
	frame   mem.Frame
	entries [EntriesPerNode]entry
	present int // number of present entries
	refs    int // owners: >1 when shared across tables
}

// reset returns a node to its zero state before it enters the recycled
// pool. Keeping the scrub in one place lets the recycling invariant
// checker (and its poison test) pin down exactly what "clean" means.
func (n *node) reset() {
	*n = node{}
}

// span returns the number of 4 KiB pages covered by one entry at the
// given level (level 1 entry covers 1 page).
func span(level int) uint64 {
	s := uint64(1)
	for i := 1; i < level; i++ {
		s *= EntriesPerNode
	}
	return s
}

// indexAt extracts the node index for va at the given level.
func indexAt(va mem.VirtAddr, level int) int {
	return int((va.VPN() >> (uint(level-1) * entryIndexBits)) & (EntriesPerNode - 1))
}

// Table is one address space's page table. Methods that perform
// simulated work take the CPU doing it as their first argument, so
// page-table manipulation is always charged to the clock of the CPU
// that executed it (a fault handler, an unmap syscall, a shootdown
// initiator, ...); tables themselves are CPU-agnostic and may be
// touched from any CPU.
type Table struct {
	params *sim.Params
	bud    *buddy.Allocator

	levels int
	root   *node

	mapped uint64 // present leaf pages (4 KiB units, huge counted by span)

	// spare recycles freed node structs, slab-style, so map/unmap churn
	// does not allocate a ~20 KiB host object per page-table page. The
	// simulated cost (PTNodeAlloc, the buddy frame) is unaffected.
	spare []*node

	stats *metrics.Set
	// Cached counters for the per-access paths (a map lookup per PTE
	// write or walk is measurable at this call frequency).
	cPTEWrites, cNodeAllocs, cNodeFrees, cWalks *metrics.Counter
}

// maxSpareNodes bounds the per-table recycled-node pool.
const maxSpareNodes = 512

// New creates an empty table with the given number of levels (Levels4
// or Levels5). The root node is allocated immediately, as in a real
// address-space creation, charged to cpu.
func New(cpu *sim.CPU, params *sim.Params, bud *buddy.Allocator, levels int) (*Table, error) {
	if levels != Levels4 && levels != Levels5 {
		return nil, fmt.Errorf("pagetable: unsupported level count %d", levels)
	}
	t := &Table{
		params: params,
		bud:    bud,
		levels: levels,
		stats:  metrics.NewSet(),
	}
	t.cPTEWrites = t.stats.Counter("pte_writes")
	t.cNodeAllocs = t.stats.Counter("node_allocs")
	t.cNodeFrees = t.stats.Counter("node_frees")
	t.cWalks = t.stats.Counter("walks")
	root, err := t.newNode(cpu, levels)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Levels returns the table depth.
func (t *Table) Levels() int { return t.levels }

// MappedPages returns the number of 4 KiB pages currently mapped
// (huge mappings counted by their span).
func (t *Table) MappedPages() uint64 { return t.mapped }

// Nodes returns the number of page-table nodes reachable from this
// table's root (shared subtrees count once). It walks the tree and is
// intended for tests and diagnostics; it charges no simulated time.
func (t *Table) Nodes() int {
	if t.root == nil {
		return 0
	}
	seen := make(map[*node]bool)
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.level == 1 {
			return
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.present && !e.huge && e.child != nil {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return len(seen)
}

// Stats exposes counters: "pte_writes", "node_allocs", "node_frees",
// "walks", "subtree_links", "subtree_unlinks".
func (t *Table) Stats() *metrics.Set { return t.stats }

// MaxVirt returns the first invalid virtual address.
func (t *Table) MaxVirt() mem.VirtAddr {
	return mem.VirtAddr(span(t.levels+1)) << mem.FrameShift
}

func (t *Table) newNode(cpu *sim.CPU, level int) (*node, error) {
	f, err := t.bud.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("pagetable: node allocation: %w", err)
	}
	cpu.Advance(t.params.PTNodeAlloc)
	t.cNodeAllocs.Inc()
	if n := len(t.spare); n > 0 {
		nd := t.spare[n-1]
		t.spare[n-1] = nil
		t.spare = t.spare[:n-1]
		nd.level = level
		nd.frame = f
		nd.refs = 1
		return nd, nil
	}
	return &node{level: level, frame: f, refs: 1}, nil
}

// freeNode drops one reference to n. When the last reference goes, the
// node's children are released recursively and its frame returns to
// the buddy allocator. Shared subtrees are therefore freed exactly once,
// by whichever table releases them last.
func (t *Table) freeNode(n *node) error {
	n.refs--
	t.cNodeFrees.Inc()
	if n.refs > 0 {
		return nil // another table still references it
	}
	if n.level > 1 {
		for i := range n.entries {
			e := &n.entries[i]
			if e.present && !e.huge && e.child != nil {
				if err := t.freeNode(e.child); err != nil {
					return err
				}
			}
		}
	}
	if err := t.bud.Free(n.frame); err != nil {
		return err
	}
	if len(t.spare) < maxSpareNodes {
		n.reset()
		t.spare = append(t.spare, n)
	}
	return nil
}

func (t *Table) checkVA(va mem.VirtAddr) error {
	if va >= t.MaxVirt() {
		return fmt.Errorf("pagetable: virtual address %#x beyond %d-level reach", uint64(va), t.levels)
	}
	return nil
}

// Map installs a 4 KiB mapping va -> frame with the given flags,
// creating intermediate nodes as needed. It charges one PTE write plus
// walk and node-allocation costs, exactly the per-page work the paper
// identifies as the linear term of mmap(MAP_POPULATE).
func (t *Table) Map(cpu *sim.CPU, va mem.VirtAddr, frame mem.Frame, flags Flags) error {
	return t.mapEntry(cpu, va, frame, flags, 1)
}

// Map2M installs a 2 MiB huge mapping. va must be 2 MiB aligned and
// frame 512-frame aligned.
func (t *Table) Map2M(cpu *sim.CPU, va mem.VirtAddr, frame mem.Frame, flags Flags) error {
	if uint64(va)%(mem.HugeFrames2M*mem.FrameSize) != 0 || uint64(frame)%mem.HugeFrames2M != 0 {
		return fmt.Errorf("pagetable: unaligned 2MiB mapping va=%#x frame=%d", uint64(va), frame)
	}
	return t.mapEntry(cpu, va, frame, flags, 2)
}

// Map1G installs a 1 GiB huge mapping. va must be 1 GiB aligned and
// frame 512²-frame aligned.
func (t *Table) Map1G(cpu *sim.CPU, va mem.VirtAddr, frame mem.Frame, flags Flags) error {
	if uint64(va)%(mem.HugeFrames1G*mem.FrameSize) != 0 || uint64(frame)%mem.HugeFrames1G != 0 {
		return fmt.Errorf("pagetable: unaligned 1GiB mapping va=%#x frame=%d", uint64(va), frame)
	}
	return t.mapEntry(cpu, va, frame, flags, 3)
}

func (t *Table) mapEntry(cpu *sim.CPU, va mem.VirtAddr, frame mem.Frame, flags Flags, leafLevel int) error {
	if err := t.checkVA(va); err != nil {
		return err
	}
	n := t.root
	for n.level > leafLevel {
		cpu.Advance(t.params.WalkLevelRef)
		idx := indexAt(va, n.level)
		e := &n.entries[idx]
		if e.present && e.huge {
			return fmt.Errorf("pagetable: va %#x already covered by a level-%d huge mapping", uint64(va), n.level)
		}
		if !e.present {
			child, err := t.newNode(cpu, n.level-1)
			if err != nil {
				return err
			}
			e.present = true
			e.child = child
			n.present++
			t.chargePTE(cpu)
		}
		if e.child.refs > 1 {
			return fmt.Errorf("pagetable: va %#x lies in a shared subtree; unlink before modifying", uint64(va))
		}
		n = e.child
	}
	if n.level != leafLevel {
		return fmt.Errorf("pagetable: internal: reached level %d, want %d", n.level, leafLevel)
	}
	idx := indexAt(va, leafLevel)
	e := &n.entries[idx]
	if e.present {
		return fmt.Errorf("pagetable: va %#x already mapped", uint64(va))
	}
	e.present = true
	e.huge = leafLevel > 1
	e.frame = frame
	e.flags = flags
	e.child = nil
	n.present++
	t.chargePTE(cpu)
	t.mapped += span(leafLevel)
	return nil
}

func (t *Table) chargePTE(cpu *sim.CPU) {
	cpu.Advance(t.params.PTEWrite)
	t.cPTEWrites.Inc()
}

// MapRange maps count contiguous pages starting at va to contiguous
// frames starting at frame — the baseline populate loop: cost is
// linear in count.
func (t *Table) MapRange(cpu *sim.CPU, va mem.VirtAddr, frame mem.Frame, count uint64, flags Flags) error {
	for i := uint64(0); i < count; i++ {
		if err := t.Map(cpu, va+mem.VirtAddr(i*mem.FrameSize), frame+mem.Frame(i), flags); err != nil {
			return err
		}
	}
	return nil
}

// Walk performs a hardware page walk for va, charging one memory
// reference per level traversed. It returns the translated physical
// address, the mapping's flags, and the number of levels referenced.
// ok is false if no translation exists.
func (t *Table) Walk(cpu *sim.CPU, va mem.VirtAddr) (pa mem.PhysAddr, flags Flags, levels int, ok bool) {
	t.cWalks.Inc()
	n := t.root
	for {
		levels++
		cpu.Advance(t.params.WalkLevelRef)
		if err := t.checkVA(va); err != nil {
			return 0, 0, levels, false
		}
		e := &n.entries[indexAt(va, n.level)]
		if !e.present {
			return 0, 0, levels, false
		}
		if n.level == 1 || e.huge {
			pageSpan := span(n.level) * mem.FrameSize
			off := uint64(va) % pageSpan
			return e.frame.Addr() + mem.PhysAddr(off), e.flags, levels, true
		}
		n = e.child
	}
}

// Lookup is Walk without charging virtual time or counters; it is the
// assertion/debug path.
func (t *Table) Lookup(va mem.VirtAddr) (pa mem.PhysAddr, flags Flags, ok bool) {
	if va >= t.MaxVirt() {
		return 0, 0, false
	}
	n := t.root
	for {
		e := &n.entries[indexAt(va, n.level)]
		if !e.present {
			return 0, 0, false
		}
		if n.level == 1 || e.huge {
			pageSpan := span(n.level) * mem.FrameSize
			off := uint64(va) % pageSpan
			return e.frame.Addr() + mem.PhysAddr(off), e.flags, true
		}
		n = e.child
	}
}

// PageSize returns the size in bytes of the mapping covering va
// (4 KiB, 2 MiB or 1 GiB), or 0 if unmapped.
func (t *Table) PageSize(va mem.VirtAddr) uint64 {
	if va >= t.MaxVirt() {
		return 0
	}
	n := t.root
	for {
		e := &n.entries[indexAt(va, n.level)]
		if !e.present {
			return 0
		}
		if n.level == 1 || e.huge {
			return span(n.level) * mem.FrameSize
		}
		n = e.child
	}
}

// Unmap removes the mapping covering va (of whatever page size) and
// returns the frame it mapped and its span in 4 KiB pages. Empty
// intermediate nodes are freed, as in free_pgtables().
func (t *Table) Unmap(cpu *sim.CPU, va mem.VirtAddr) (mem.Frame, uint64, error) {
	if err := t.checkVA(va); err != nil {
		return 0, 0, err
	}
	frame, pages, err := t.unmapRec(cpu, t.root, va)
	if err != nil {
		return 0, 0, err
	}
	t.mapped -= pages
	return frame, pages, nil
}

func (t *Table) unmapRec(cpu *sim.CPU, n *node, va mem.VirtAddr) (mem.Frame, uint64, error) {
	cpu.Advance(t.params.WalkLevelRef)
	e := &n.entries[indexAt(va, n.level)]
	if !e.present {
		return 0, 0, fmt.Errorf("pagetable: va %#x not mapped", uint64(va))
	}
	if n.level == 1 || e.huge {
		frame := e.frame
		pages := span(n.level)
		*e = entry{}
		n.present--
		t.chargePTE(cpu)
		return frame, pages, nil
	}
	child := e.child
	if child.refs > 1 {
		return 0, 0, fmt.Errorf("pagetable: va %#x lies in a shared subtree; use UnlinkSubtree", uint64(va))
	}
	frame, pages, err := t.unmapRec(cpu, child, va)
	if err != nil {
		return 0, 0, err
	}
	if child.present == 0 {
		if err := t.freeNode(child); err != nil {
			return 0, 0, err
		}
		*e = entry{}
		n.present--
		t.chargePTE(cpu)
	}
	return frame, pages, nil
}

// UnmapRange unmaps count pages starting at va, invoking fn (if
// non-nil) with each unmapped frame and its span. Cost is linear in
// the number of mappings removed.
func (t *Table) UnmapRange(cpu *sim.CPU, va mem.VirtAddr, count uint64, fn func(mem.Frame, uint64)) error {
	end := va + mem.VirtAddr(count*mem.FrameSize)
	for va < end {
		sz := t.PageSize(va)
		if sz == 0 {
			va += mem.FrameSize
			continue
		}
		frame, pages, err := t.Unmap(cpu, va)
		if err != nil {
			return err
		}
		if fn != nil {
			fn(frame, pages)
		}
		va += mem.VirtAddr(sz)
	}
	return nil
}

// Protect rewrites the flags of the mapping covering va. It returns an
// error if va is unmapped or inside a shared subtree.
func (t *Table) Protect(cpu *sim.CPU, va mem.VirtAddr, flags Flags) error {
	if err := t.checkVA(va); err != nil {
		return err
	}
	n := t.root
	for {
		cpu.Advance(t.params.WalkLevelRef)
		e := &n.entries[indexAt(va, n.level)]
		if !e.present {
			return fmt.Errorf("pagetable: protect of unmapped va %#x", uint64(va))
		}
		if n.level == 1 || e.huge {
			e.flags = flags
			t.chargePTE(cpu)
			return nil
		}
		if e.child.refs > 1 {
			return fmt.Errorf("pagetable: va %#x lies in a shared subtree", uint64(va))
		}
		n = e.child
	}
}

// SubtreeLevel returns the level of the interior entry that exactly
// covers a naturally aligned region of the given page count:
// 512 pages -> level 2 (2 MiB node), 512² -> level 3, 512³ -> level 4.
func SubtreeLevel(pages uint64) (int, error) {
	switch pages {
	case EntriesPerNode:
		return 2, nil
	case EntriesPerNode * EntriesPerNode:
		return 3, nil
	case EntriesPerNode * EntriesPerNode * EntriesPerNode:
		return 4, nil
	default:
		return 0, fmt.Errorf("pagetable: %d pages is not a subtree span", pages)
	}
}

// LinkSubtree points this table's interior entry covering va at the
// node that covers srcVA in src — the paper's Figure 3/8 mechanism.
// Both addresses must be aligned to the subtree span for the given
// level. The cost is a single entry write regardless of how many pages
// the subtree maps: this is what makes shared mapping O(1).
func (t *Table) LinkSubtree(cpu *sim.CPU, va mem.VirtAddr, src *Table, srcVA mem.VirtAddr, level int) error {
	if level < 2 || level >= t.levels+1 {
		return fmt.Errorf("pagetable: cannot link at level %d", level)
	}
	alignPages := span(level)
	if va.VPN()%alignPages != 0 || srcVA.VPN()%alignPages != 0 {
		return fmt.Errorf("pagetable: LinkSubtree addresses not aligned to level-%d span", level)
	}
	if err := t.checkVA(va); err != nil {
		return err
	}
	// A level-N interior entry points at a level-(N-1) node; that node
	// is the shared subtree.
	srcNode, err := src.subtreeNode(srcVA, level-1)
	if err != nil {
		return err
	}
	// Descend to the node holding the level-`level` entry.
	n := t.root
	for n.level > level {
		cpu.Advance(t.params.WalkLevelRef)
		idx := indexAt(va, n.level)
		e := &n.entries[idx]
		if !e.present {
			child, err := t.newNode(cpu, n.level-1)
			if err != nil {
				return err
			}
			e.present = true
			e.child = child
			n.present++
			t.chargePTE(cpu)
		} else if e.huge {
			return fmt.Errorf("pagetable: va %#x covered by huge mapping", uint64(va))
		}
		n = e.child
	}
	e := &n.entries[indexAt(va, level)]
	if e.present {
		return fmt.Errorf("pagetable: va %#x already mapped", uint64(va))
	}
	srcNode.refs++
	e.present = true
	e.child = srcNode
	n.present++
	t.chargePTE(cpu)
	t.stats.Counter("subtree_links").Inc()
	t.mapped += srcPresentPages(srcNode)
	return nil
}

// subtreeNode returns the node covering va at the given level.
func (t *Table) subtreeNode(va mem.VirtAddr, level int) (*node, error) {
	if err := t.checkVA(va); err != nil {
		return nil, err
	}
	n := t.root
	for n.level > level {
		e := &n.entries[indexAt(va, n.level)]
		if !e.present || e.huge {
			return nil, fmt.Errorf("pagetable: no level-%d subtree at va %#x", level, uint64(va))
		}
		n = e.child
	}
	return n, nil
}

// srcPresentPages counts the pages currently mapped under a subtree
// (used only for the mapped-page gauge; not charged as simulated work).
func srcPresentPages(n *node) uint64 {
	if n.level == 1 {
		return uint64(n.present)
	}
	var total uint64
	for i := range n.entries {
		e := &n.entries[i]
		if !e.present {
			continue
		}
		if e.huge {
			total += span(n.level)
		} else {
			total += srcPresentPages(e.child)
		}
	}
	return total
}

// UnlinkSubtree removes a previously linked subtree entry covering va
// at the given level. Like LinkSubtree, the cost is a single entry
// write.
func (t *Table) UnlinkSubtree(cpu *sim.CPU, va mem.VirtAddr, level int) error {
	if err := t.checkVA(va); err != nil {
		return err
	}
	n := t.root
	for n.level > level {
		cpu.Advance(t.params.WalkLevelRef)
		e := &n.entries[indexAt(va, n.level)]
		if !e.present || e.huge {
			return fmt.Errorf("pagetable: no mapping at va %#x", uint64(va))
		}
		n = e.child
	}
	e := &n.entries[indexAt(va, level)]
	if !e.present || e.child == nil {
		return fmt.Errorf("pagetable: no subtree linked at va %#x level %d", uint64(va), level)
	}
	child := e.child
	t.mapped -= srcPresentPages(child)
	if err := t.freeNode(child); err != nil {
		return err
	}
	*e = entry{}
	n.present--
	t.chargePTE(cpu)
	t.stats.Counter("subtree_unlinks").Inc()
	// Prune intermediate nodes the link's installation created, so a
	// later link at a higher level finds the slot free.
	return t.pruneEmpty(cpu, t.root, va)
}

// pruneEmpty frees empty interior nodes along the path to va.
func (t *Table) pruneEmpty(cpu *sim.CPU, n *node, va mem.VirtAddr) error {
	if n.level == 1 {
		return nil
	}
	e := &n.entries[indexAt(va, n.level)]
	if !e.present || e.huge || e.child == nil {
		return nil
	}
	child := e.child
	if child.refs > 1 {
		return nil // shared: not ours to prune
	}
	if err := t.pruneEmpty(cpu, child, va); err != nil {
		return err
	}
	if child.present == 0 {
		if err := t.freeNode(child); err != nil {
			return err
		}
		*e = entry{}
		n.present--
		t.chargePTE(cpu)
	}
	return nil
}

// Destroy tears down the whole table, freeing every owned node. Frames
// of shared subtrees are freed only when their last owner destroys
// them.
func (t *Table) Destroy() error {
	if t.root == nil {
		return nil
	}
	if err := t.freeNode(t.root); err != nil {
		return err
	}
	t.root = nil
	t.mapped = 0
	return nil
}

// VisitLeaves calls fn for every present leaf mapping reachable from
// the root — including leaves inside shared (refs > 1) subtrees — with
// the mapping's virtual base address, first frame, span in 4 KiB
// pages, and flags. It charges no simulated time; invariant checkers
// use it to rebuild the full VA→frame relation of an address space.
func (t *Table) VisitLeaves(fn func(va mem.VirtAddr, frame mem.Frame, pages uint64, flags Flags)) {
	if t.root == nil {
		return
	}
	var walk func(n *node, base mem.VirtAddr)
	walk = func(n *node, base mem.VirtAddr) {
		step := mem.VirtAddr(span(n.level) * mem.FrameSize)
		for i := range n.entries {
			e := &n.entries[i]
			if !e.present {
				continue
			}
			va := base + mem.VirtAddr(i)*step
			if n.level == 1 || e.huge {
				fn(va, e.frame, span(n.level), e.flags)
			} else {
				walk(e.child, va)
			}
		}
	}
	walk(t.root, 0)
}

// SpareScrubbed verifies that every node on the recycled-node pool is
// fully zeroed, i.e. nothing from its previous life can leak into the
// next address space that pops it.
func (t *Table) SpareScrubbed() error {
	zero := node{}
	for i, n := range t.spare {
		if *n != zero {
			return fmt.Errorf("pagetable: spare node %d not scrubbed (level=%d frame=%d present=%d refs=%d)",
				i, n.level, n.frame, n.present, n.refs)
		}
	}
	return nil
}

// CheckInvariants validates present-entry counts throughout the tree.
func (t *Table) CheckInvariants() error {
	if t.root == nil {
		return nil
	}
	return checkRec(t.root)
}

func checkRec(n *node) error {
	count := 0
	for i := range n.entries {
		e := &n.entries[i]
		if !e.present {
			if e.child != nil {
				return fmt.Errorf("pagetable: absent entry with child at level %d", n.level)
			}
			continue
		}
		count++
		if n.level > 1 && !e.huge {
			if e.child == nil {
				return fmt.Errorf("pagetable: interior present entry with nil child at level %d", n.level)
			}
			if e.child.level != n.level-1 {
				return fmt.Errorf("pagetable: child level %d under level %d", e.child.level, n.level)
			}
			if e.child.refs == 1 {
				if err := checkRec(e.child); err != nil {
					return err
				}
			}
		}
		if e.huge && (n.level < 2 || n.level > 3) {
			return fmt.Errorf("pagetable: huge entry at level %d", n.level)
		}
	}
	if count != n.present {
		return fmt.Errorf("pagetable: level-%d node has %d present entries, counter says %d", n.level, count, n.present)
	}
	return nil
}
