package proc

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(MachineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(MachineConfig{NVMFrames: 100, TmpfsFrames: 100}); err == nil {
		t.Fatal("tmpfs == NVM accepted")
	}
}

func TestLaunchRequiresCode(t *testing.T) {
	m := newMgr(t)
	if _, err := m.LaunchBaseline(Image{}); err == nil {
		t.Fatal("baseline launch without code accepted")
	}
	if _, err := m.LaunchFOM(Image{}, core.Ranges); err == nil {
		t.Fatal("FOM launch without code accepted")
	}
}

// runLifecycle exercises a process through the shared interface.
func runLifecycle(t *testing.T, p Process) {
	t.Helper()
	data := bytes.Repeat([]byte("heap-data"), 1000)
	if err := p.WriteHeap(100, data); err != nil {
		t.Fatalf("WriteHeap: %v", err)
	}
	got := make([]byte, len(data))
	if err := p.ReadHeap(100, got); err != nil {
		t.Fatalf("ReadHeap: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("heap round trip mismatch")
	}
	if err := p.TouchStack(0, true); err != nil {
		t.Fatalf("TouchStack: %v", err)
	}
	code := make([]byte, 16)
	if err := p.ReadCode(0, code); err != nil {
		t.Fatalf("ReadCode: %v", err)
	}
	for _, b := range code {
		if b != 0x90 {
			t.Fatalf("code byte %#x, want 0x90", b)
		}
	}
	// Heap bounds.
	if err := p.WriteHeap(p.HeapPages()*mem.FrameSize, []byte{1}); err == nil {
		t.Fatal("write past heap end accepted")
	}
	// Grow and use the new region.
	oldPages := p.HeapPages()
	if err := p.GrowHeap(64); err != nil {
		t.Fatalf("GrowHeap: %v", err)
	}
	if p.HeapPages() != oldPages+64 {
		t.Fatalf("HeapPages = %d", p.HeapPages())
	}
	if err := p.WriteHeap(oldPages*mem.FrameSize+5, []byte("grown")); err != nil {
		t.Fatalf("write to grown heap: %v", err)
	}
	b := make([]byte, 5)
	if err := p.ReadHeap(oldPages*mem.FrameSize+5, b); err != nil || string(b) != "grown" {
		t.Fatalf("read grown heap: %q, %v", b, err)
	}
	if err := p.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
}

func TestBaselineLifecycle(t *testing.T) {
	m := newMgr(t)
	code, err := m.WriteProgram(m.Tmpfs, "/prog", 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LaunchBaseline(Image{Code: code})
	if err != nil {
		t.Fatal(err)
	}
	runLifecycle(t, p)
}

func TestFOMLifecycleBothModes(t *testing.T) {
	for _, mode := range []core.TranslationMode{core.Ranges, core.SharedPT} {
		t.Run(mode.String(), func(t *testing.T) {
			m := newMgr(t)
			code, err := m.WriteProgramFOM("/prog", 8)
			if err != nil {
				t.Fatal(err)
			}
			p, err := m.LaunchFOM(Image{Code: code}, mode)
			if err != nil {
				t.Fatal(err)
			}
			runLifecycle(t, p)
		})
	}
}

func TestBaselineFork(t *testing.T) {
	m := newMgr(t)
	code, _ := m.WriteProgram(m.Tmpfs, "/forker", 2)
	parent, err := m.LaunchBaseline(Image{Code: code})
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteHeap(0, []byte("pre-fork")); err != nil {
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := child.ReadHeap(0, got); err != nil || string(got) != "pre-fork" {
		t.Fatalf("child heap: %q, %v", got, err)
	}
	if err := child.WriteHeap(0, []byte("child!!!")); err != nil {
		t.Fatal(err)
	}
	if err := parent.ReadHeap(0, got); err != nil || string(got) != "pre-fork" {
		t.Fatalf("parent heap after child write: %q, %v", got, err)
	}
	if err := child.Exit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Exit(); err != nil {
		t.Fatal(err)
	}
}

func TestCodeWriteProtected(t *testing.T) {
	m := newMgr(t)
	codeB, _ := m.WriteProgram(m.Tmpfs, "/b", 2)
	pb, err := m.LaunchBaseline(Image{Code: codeB})
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.AddressSpace().Touch(pb.code, true); err == nil {
		t.Fatal("baseline: write to code segment accepted")
	}

	codeF, _ := m.WriteProgramFOM("/f", 2)
	pf, err := m.LaunchFOM(Image{Code: codeF}, core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := pf.code.VAForOffset(0)
	if err := pf.Core().Touch(va, true); err == nil {
		t.Fatal("FOM: write to code segment accepted")
	}
}

func TestFOMExitReclaims(t *testing.T) {
	m := newMgr(t)
	code, _ := m.WriteProgramFOM("/x", 2)
	free0 := m.FOM.FreeFrames()
	p, err := m.LaunchFOM(Image{Code: code}, core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.GrowHeap(512); err != nil {
		t.Fatal(err)
	}
	if err := p.Exit(); err != nil {
		t.Fatal(err)
	}
	if got := m.FOM.FreeFrames(); got != free0 {
		t.Fatalf("FOM frames leaked at exit: %d -> %d", free0, got)
	}
}

func TestSameWorkloadBothBackends(t *testing.T) {
	// The same heap workload must produce identical data on both
	// backends — only the costs differ.
	m := newMgr(t)
	codeB, _ := m.WriteProgram(m.Tmpfs, "/w", 2)
	codeF, _ := m.WriteProgramFOM("/w", 2)
	pb, err := m.LaunchBaseline(Image{Code: codeB, HeapPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := m.LaunchFOM(Image{Code: codeF, HeapPages: 128}, core.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Process{pb, pf} {
		for i := uint64(0); i < 128; i++ {
			if err := p.WriteHeap(i*mem.FrameSize, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, p := range []Process{pb, pf} {
		for i := uint64(0); i < 128; i += 17 {
			var b [1]byte
			if err := p.ReadHeap(i*mem.FrameSize, b[:]); err != nil {
				t.Fatal(err)
			}
			if b[0] != byte(i) {
				t.Fatalf("heap[%d] = %d", i, b[0])
			}
		}
	}
}
