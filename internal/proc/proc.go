// Package proc models process lifecycles over both memory backends:
// the baseline VM (package vm) and file-only memory (package core).
//
// It realizes the paper's launch model (§3.1): "code segments, heap
// segments, and stack segments can all be represented as separate
// files". A Manager owns one simulated machine with both backends
// mounted; LaunchBaseline and LaunchFOM start processes whose segments
// are backed the corresponding way, behind one Process interface so
// experiments and examples can run identical workloads on both.
package proc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Image describes the program being launched.
type Image struct {
	// Code is the executable file (mapped read+exec). Required.
	Code *memfs.File
	// StackPages sizes the main thread stack (default 32 = 128 KiB).
	StackPages uint64
	// HeapPages sizes the initial heap (default 256 = 1 MiB).
	HeapPages uint64
}

func (img *Image) defaults() {
	if img.StackPages == 0 {
		img.StackPages = 32
	}
	if img.HeapPages == 0 {
		img.HeapPages = 256
	}
}

// Process is a running program on either backend.
type Process interface {
	// ReadHeap and WriteHeap access the heap through the backend's
	// full translation path (TLBs, walks, faults).
	ReadHeap(off uint64, buf []byte) error
	WriteHeap(off uint64, data []byte) error
	// TouchStack exercises the stack segment.
	TouchStack(off uint64, write bool) error
	// ReadCode fetches from the code segment (read-only).
	ReadCode(off uint64, buf []byte) error
	// GrowHeap extends the heap by pages.
	GrowHeap(pages uint64) error
	// HeapPages returns the current heap size in pages.
	HeapPages() uint64
	// Exit terminates the process, reclaiming all its memory.
	Exit() error
}

// Manager owns one machine with both backends.
type Manager struct {
	Machine *sim.Machine
	Clock   *sim.Clock // the machine's kernel clock
	Params  *sim.Params
	Memory  *mem.Memory
	Kernel  *vm.Kernel   // baseline backend
	FOM     *core.System // file-only-memory backend
	Tmpfs   *memfs.FS    // page-granular fs used by the baseline for files
}

// MachineConfig sizes the simulated machine.
type MachineConfig struct {
	CPUs        int    // simulated processors (default 1)
	DRAMFrames  uint64 // baseline pool + page tables (default 64 Ki = 256 MiB)
	NVMFrames   uint64 // file systems (default 512 Ki = 2 GiB)
	TmpfsFrames uint64 // slice of NVM handed to tmpfs (default quarter)
}

// NewManager builds the machine and mounts both backends.
func NewManager(cfg MachineConfig) (*Manager, error) {
	if cfg.DRAMFrames == 0 {
		cfg.DRAMFrames = 64 << 10
	}
	if cfg.NVMFrames == 0 {
		cfg.NVMFrames = 512 << 10
	}
	if cfg.TmpfsFrames == 0 {
		cfg.TmpfsFrames = cfg.NVMFrames / 4
	}
	if cfg.TmpfsFrames >= cfg.NVMFrames {
		return nil, fmt.Errorf("proc: tmpfs (%d) must be smaller than NVM (%d)", cfg.TmpfsFrames, cfg.NVMFrames)
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 1
	}
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, cfg.CPUs, 0)
	// Subsystems charge through the kernel clock, so their work lands on
	// whichever CPU is executing; both backends recover the machine from
	// it (sim.MachineOf) and schedule processes round-robin across CPUs.
	clock := machine.Clock()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: cfg.DRAMFrames, NVMFrames: cfg.NVMFrames})
	if err != nil {
		return nil, err
	}
	kernel, err := vm.NewKernel(clock, &params, memory, vm.Config{PoolBase: 0, PoolFrames: cfg.DRAMFrames})
	if err != nil {
		return nil, err
	}
	nvm, _ := memory.Region(mem.NVM)
	tmpfs, err := memfs.New("tmpfs", memfs.PerPage, clock, &params, memory, nvm.Start, cfg.TmpfsFrames)
	if err != nil {
		return nil, err
	}
	fom, err := core.NewSystem(clock, &params, memory, core.Options{
		FSBase:   nvm.Start + mem.Frame(cfg.TmpfsFrames),
		FSFrames: nvm.Count - cfg.TmpfsFrames,
	})
	if err != nil {
		return nil, err
	}
	return &Manager{
		Machine: machine,
		Clock:   clock,
		Params:  &params,
		Memory:  memory,
		Kernel:  kernel,
		FOM:     fom,
		Tmpfs:   tmpfs,
	}, nil
}

// WriteProgram creates a code file of the given page count on the
// backend-appropriate file system, filled with a recognizable pattern.
func (m *Manager) WriteProgram(fs *memfs.FS, path string, pages uint64) (*memfs.File, error) {
	f, err := fs.Create(path, memfs.CreateOptions{
		Mode:       pagetable.FlagRead | pagetable.FlagExec | pagetable.FlagUser,
		Durability: memfs.Persistent,
	})
	if err != nil {
		return nil, err
	}
	text := make([]byte, pages*mem.FrameSize)
	for i := range text {
		text[i] = byte(0x90) // nop sled
	}
	if _, err := f.WriteAt(text, 0); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

// WriteProgramFOM creates a chunk-aligned contiguous code file on the
// file-only-memory store, suitable for O(1) mapping in either
// translation mode.
func (m *Manager) WriteProgramFOM(path string, pages uint64) (*memfs.File, error) {
	f, err := m.FOM.CreateContiguousFile(path, pages, memfs.CreateOptions{
		Mode:       pagetable.FlagRead | pagetable.FlagExec | pagetable.FlagUser,
		Durability: memfs.Persistent,
	}, true)
	if err != nil {
		return nil, err
	}
	text := make([]byte, pages*mem.FrameSize)
	for i := range text {
		text[i] = 0x90
	}
	if _, err := f.WriteAt(text, 0); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

const (
	rx = pagetable.FlagRead | pagetable.FlagExec | pagetable.FlagUser
	rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser
)

// --- Baseline process -------------------------------------------------

// BaselineProc runs on the traditional VM.
type BaselineProc struct {
	mgr   *Manager
	as    *vm.AddressSpace
	code  mem.VirtAddr
	stack mem.VirtAddr
	heap  mem.VirtAddr
	heapN uint64
	codeN uint64
}

// LaunchBaseline starts a process on the baseline VM: the code file is
// demand-mapped, stack and heap are anonymous mappings populated page
// by page on first touch.
func (m *Manager) LaunchBaseline(img Image) (*BaselineProc, error) {
	img.defaults()
	if img.Code == nil {
		return nil, fmt.Errorf("proc: image has no code file")
	}
	as, err := m.Kernel.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	p := &BaselineProc{mgr: m, as: as, heapN: img.HeapPages, codeN: img.Code.Inode().Pages()}
	if p.code, err = as.Mmap(vm.MmapRequest{
		Pages: p.codeN, Prot: rx, File: img.Code, Private: true,
	}); err != nil {
		return nil, err
	}
	if p.stack, err = as.Mmap(vm.MmapRequest{Pages: img.StackPages, Prot: rw, Anon: true, Private: true}); err != nil {
		return nil, err
	}
	if p.heap, err = as.Mmap(vm.MmapRequest{Pages: img.HeapPages, Prot: rw, Anon: true, Private: true}); err != nil {
		return nil, err
	}
	return p, nil
}

// AddressSpace exposes the underlying address space.
func (p *BaselineProc) AddressSpace() *vm.AddressSpace { return p.as }

// ReadHeap implements Process.
func (p *BaselineProc) ReadHeap(off uint64, buf []byte) error {
	if err := p.checkHeap(off, uint64(len(buf))); err != nil {
		return err
	}
	return p.as.ReadBuf(p.heap+mem.VirtAddr(off), buf)
}

// WriteHeap implements Process.
func (p *BaselineProc) WriteHeap(off uint64, data []byte) error {
	if err := p.checkHeap(off, uint64(len(data))); err != nil {
		return err
	}
	return p.as.WriteBuf(p.heap+mem.VirtAddr(off), data)
}

func (p *BaselineProc) checkHeap(off, n uint64) error {
	if off+n > p.heapN*mem.FrameSize {
		return fmt.Errorf("proc: heap access [%d,+%d) beyond %d pages", off, n, p.heapN)
	}
	return nil
}

// TouchStack implements Process.
func (p *BaselineProc) TouchStack(off uint64, write bool) error {
	return p.as.Touch(p.stack+mem.VirtAddr(off), write)
}

// ReadCode implements Process.
func (p *BaselineProc) ReadCode(off uint64, buf []byte) error {
	return p.as.ReadBuf(p.code+mem.VirtAddr(off), buf)
}

// GrowHeap implements Process: brk() extends the anonymous heap VMA
// (merged by the VMA layer).
func (p *BaselineProc) GrowHeap(pages uint64) error {
	_, err := p.as.Mmap(vm.MmapRequest{
		Addr:  p.heap + mem.VirtAddr(p.heapN*mem.FrameSize),
		Pages: pages, Prot: rw, Anon: true, Private: true,
	})
	if err != nil {
		return err
	}
	p.heapN += pages
	return nil
}

// HeapPages implements Process.
func (p *BaselineProc) HeapPages() uint64 { return p.heapN }

// Fork duplicates the process COW-style (baseline only; file-only
// memory has no COW, one of the trade-offs §3.1 concedes).
func (p *BaselineProc) Fork() (*BaselineProc, error) {
	as, err := p.as.Fork()
	if err != nil {
		return nil, err
	}
	cp := *p
	cp.as = as
	return &cp, nil
}

// Exit implements Process.
func (p *BaselineProc) Exit() error { return p.as.Destroy() }

// --- File-only-memory process -----------------------------------------

// FOMProc runs on file-only memory: every segment is a file.
type FOMProc struct {
	mgr   *Manager
	proc  *core.Process
	code  *core.Mapping
	stack *core.Mapping
	heaps []*core.Mapping // heap grows by appending segments (files)
	heapN uint64
}

// LaunchFOM starts a process on file-only memory. The code file is
// mapped in one O(1) operation; stack and heap are single-extent
// anonymous files ("creating a thread stack becomes allocating a file
// with a single extent", §3.1).
func (m *Manager) LaunchFOM(img Image, mode core.TranslationMode) (*FOMProc, error) {
	img.defaults()
	if img.Code == nil {
		return nil, fmt.Errorf("proc: image has no code file")
	}
	cp, err := m.FOM.NewProcess(mode)
	if err != nil {
		return nil, err
	}
	p := &FOMProc{mgr: m, proc: cp, heapN: img.HeapPages}
	if p.code, err = cp.MapFile(img.Code, rx); err != nil {
		return nil, err
	}
	if p.stack, err = cp.AllocVolatile(img.StackPages, rw); err != nil {
		return nil, err
	}
	heap, err := cp.AllocVolatile(img.HeapPages, rw)
	if err != nil {
		return nil, err
	}
	p.heaps = []*core.Mapping{heap}
	return p, nil
}

// Core exposes the underlying file-only-memory process.
func (p *FOMProc) Core() *core.Process { return p.proc }

// heapLocate maps a heap offset to (mapping, offset-within-mapping).
func (p *FOMProc) heapLocate(off uint64) (*core.Mapping, uint64, error) {
	for _, h := range p.heaps {
		if off < h.Bytes() {
			return h, off, nil
		}
		off -= h.Bytes()
	}
	return nil, 0, fmt.Errorf("proc: heap offset beyond %d pages", p.heapN)
}

// ReadHeap implements Process.
func (p *FOMProc) ReadHeap(off uint64, buf []byte) error {
	return p.heapIO(off, buf, false)
}

// WriteHeap implements Process.
func (p *FOMProc) WriteHeap(off uint64, data []byte) error {
	return p.heapIO(off, data, true)
}

func (p *FOMProc) heapIO(off uint64, buf []byte, write bool) error {
	for len(buf) > 0 {
		h, hoff, err := p.heapLocate(off)
		if err != nil {
			return err
		}
		n := h.Bytes() - hoff
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		va, err := h.VAForOffset(hoff)
		if err != nil {
			return err
		}
		if write {
			err = p.proc.WriteBuf(va, buf[:n])
		} else {
			err = p.proc.ReadBuf(va, buf[:n])
		}
		if err != nil {
			return err
		}
		buf = buf[n:]
		off += n
	}
	return nil
}

// TouchStack implements Process.
func (p *FOMProc) TouchStack(off uint64, write bool) error {
	va, err := p.stack.VAForOffset(off)
	if err != nil {
		return err
	}
	return p.proc.Touch(va, write)
}

// ReadCode implements Process.
func (p *FOMProc) ReadCode(off uint64, buf []byte) error {
	va, err := p.code.VAForOffset(off)
	if err != nil {
		return err
	}
	return p.proc.ReadBuf(va, buf)
}

// GrowHeap implements Process: another O(1) single-extent file.
func (p *FOMProc) GrowHeap(pages uint64) error {
	h, err := p.proc.AllocVolatile(pages, rw)
	if err != nil {
		return err
	}
	p.heaps = append(p.heaps, h)
	p.heapN += pages
	return nil
}

// HeapPages implements Process.
func (p *FOMProc) HeapPages() uint64 { return p.heapN }

// Exit implements Process: file-grain reclamation of every segment.
func (p *FOMProc) Exit() error { return p.proc.Exit() }

// Interface conformance.
var (
	_ Process = (*BaselineProc)(nil)
	_ Process = (*FOMProc)(nil)
)
