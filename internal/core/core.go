// Package core implements the paper's primary contribution: file-only
// memory with Order(1) operations.
//
// All user-mode memory is allocated as files in an extent-based memory
// file system (package memfs) living in persistent memory. Every
// memory-management operation is constant time in the mapping size:
//
//   - Allocation: a volatile heap/stack segment is an anonymous file
//     with a single contiguous extent; carving it out is one buddy run
//     allocation plus one O(1) epoch erase — no per-page work.
//   - Mapping: addresses are physically based (PBM, §4.2): the virtual
//     address of a byte is its physical address plus a fixed offset, so
//     every process maps a file at the same address and translations
//     can be shared. A mapping is installed either as one range-table
//     entry per extent (Ranges mode, the §4.3 hardware) or by linking
//     pre-created page-table subtrees (SharedPT mode, §3.1/Figure 3) —
//     both independent of the number of pages.
//   - Protection: one flags update per extent entry — file grain, never
//     page grain.
//   - Reclamation: memory returns only when a file's last mapping and
//     link disappear; under pressure whole discardable files are
//     deleted. Nothing scans pages.
//   - Erasure: freed extents are erased with the O(1) epoch mechanism.
//
// The package deliberately has no page-fault handler: every mapping is
// usable in full immediately after the O(1) map operation. The
// baseline that pays per-page costs for the same workloads is package
// vm.
package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/rangetable"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/tlb"
)

// PBMBase is the fixed offset of physically based mappings: the
// virtual address of physical byte p is PBMBase + p. It sits far above
// any physical address yet within 4-level (48-bit) reach.
const PBMBase = mem.VirtAddr(1) << 46

// VAForPhys returns the PBM virtual address of a physical address.
func VAForPhys(pa mem.PhysAddr) mem.VirtAddr { return PBMBase + mem.VirtAddr(pa) }

// PhysForVA inverts VAForPhys.
func PhysForVA(va mem.VirtAddr) (mem.PhysAddr, error) {
	if va < PBMBase {
		return 0, fmt.Errorf("core: %#x is not a PBM address", uint64(va))
	}
	return mem.PhysAddr(va - PBMBase), nil
}

// TranslationMode selects how processes translate PBM addresses.
type TranslationMode int

const (
	// Ranges uses the proposed range-translation hardware: one
	// (base, limit, offset) entry per extent plus a range TLB.
	Ranges TranslationMode = iota
	// SharedPT uses conventional page-table hardware with the paper's
	// software O(1) tricks: pre-created per-file page tables whose
	// aligned subtrees are linked into each process with single entry
	// writes.
	SharedPT
)

// String names the mode.
func (m TranslationMode) String() string {
	switch m {
	case Ranges:
		return "ranges"
	case SharedPT:
		return "shared-pt"
	default:
		return fmt.Sprintf("TranslationMode(%d)", int(m))
	}
}

// chunkPages is the subtree-link granularity in SharedPT mode: one
// level-2 entry spans 512 pages (2 MiB). Files are padded to this
// multiple in SharedPT mode — the paper's explicit space-for-time
// trade.
const chunkPages = 512

// Options configure a System.
type Options struct {
	// FSBase/FSFrames locate the file-only-memory store. If FSFrames
	// is zero the system uses the machine's whole NVM region.
	FSBase   mem.Frame
	FSFrames uint64
	// PTPoolBase/PTPoolFrames locate the pool for page-table nodes in
	// SharedPT mode. If zero, the system uses the DRAM region.
	PTPoolBase   mem.Frame
	PTPoolFrames uint64
	// RTLBEntries sizes each process's range TLB (0 = default).
	RTLBEntries int
}

// System is one machine's file-only-memory manager.
type System struct {
	clock   *sim.Clock
	params  *sim.Params
	memory  *mem.Memory
	machine *sim.Machine

	// Per-CPU translation caches, shared by every process scheduled on
	// the CPU (entries are tagged by process id): tlbs for SharedPT
	// processes, rtlbs for Ranges processes.
	tlbs  []*tlb.TLB
	rtlbs []*rangetable.RTLB

	// nextCPU round-robins new processes across CPUs.
	nextCPU int

	fs *memfs.FS

	// ptPool allocates page-table nodes (SharedPT mode).
	ptPool *ptPool

	// Pre-created master page tables for PBM space, one per
	// protection class (the paper's "two sets of page tables to allow
	// different permissions"). Chunks are populated on first use and
	// then shared by every process and every later mapping — the
	// persistent pre-created page tables of §3.1.
	masters map[pagetable.Flags]*masterTable

	rtlbEntries int

	// tier is the optional migration engine (AttachTier). The system —
	// not the FS — is its backend: range translations address whole
	// extents, so migration moves extents, not single pages.
	tier *tier.Engine

	procs int

	// live registers every non-exited process by PID so the invariant
	// checker can audit range tables, linked page tables, and per-CPU
	// translation caches machine-wide. PIDs are never reused, so a
	// cached translation tagged with a PID absent here is provably
	// stale.
	live map[int]*Process

	stats *metrics.Set
}

// masterTable is a pre-created page table covering PBM space for one
// protection class.
type masterTable struct {
	table  *pagetable.Table
	prot   pagetable.Flags
	chunks map[mem.VirtAddr]bool // populated 2 MiB chunks
}

// NewSystem creates a file-only-memory system on the given machine.
// The CPU set is derived from clock (see sim.MachineOf): the kernel
// clock of a sim.Machine yields its CPUs, a free-standing clock models
// a single-CPU machine.
func NewSystem(clock *sim.Clock, params *sim.Params, memory *mem.Memory, opts Options) (*System, error) {
	machine := sim.MachineOf(clock, params)
	base, frames := opts.FSBase, opts.FSFrames
	if frames == 0 {
		nvm, ok := memory.Region(mem.NVM)
		if !ok {
			return nil, fmt.Errorf("core: machine has no NVM region and no explicit FS range")
		}
		base, frames = nvm.Start, nvm.Count
	}
	fs, err := memfs.New("fom", memfs.Extent, clock, params, memory, base, frames)
	if err != nil {
		return nil, err
	}
	ptBase, ptFrames := opts.PTPoolBase, opts.PTPoolFrames
	if ptFrames == 0 {
		dram, ok := memory.Region(mem.DRAM)
		if !ok {
			return nil, fmt.Errorf("core: machine has no DRAM region for page tables")
		}
		ptBase, ptFrames = dram.Start, dram.Count
	}
	pool, err := newPTPool(clock, params, ptBase, ptFrames)
	if err != nil {
		return nil, err
	}
	s := &System{
		clock:       clock,
		params:      params,
		memory:      memory,
		machine:     machine,
		fs:          fs,
		ptPool:      pool,
		masters:     make(map[pagetable.Flags]*masterTable),
		rtlbEntries: opts.RTLBEntries,
		live:        make(map[int]*Process),
		stats:       metrics.NewSet(),
	}
	for _, cpu := range machine.CPUs() {
		s.tlbs = append(s.tlbs, tlb.New(cpu, params, tlb.DefaultConfig()))
		s.rtlbs = append(s.rtlbs, rangetable.NewRTLB(cpu, params, opts.RTLBEntries))
	}
	machine.RegisterInvariants("core", s.CheckInvariants)
	machine.RegisterStats("core", s.stats)
	return s, nil
}

// Machine returns the machine the system runs on.
func (s *System) Machine() *sim.Machine { return s.machine }

// TLBFor returns the given CPU's page TLB (SharedPT processes).
func (s *System) TLBFor(cpu *sim.CPU) *tlb.TLB { return s.tlbs[cpu.ID()] }

// RTLBFor returns the given CPU's range TLB (Ranges processes).
func (s *System) RTLBFor(cpu *sim.CPU) *rangetable.RTLB { return s.rtlbs[cpu.ID()] }

// Clock returns the system's virtual clock.
func (s *System) Clock() *sim.Clock { return s.clock }

// Params returns the system's cost table.
func (s *System) Params() *sim.Params { return s.params }

// Memory returns the machine's physical memory.
func (s *System) Memory() *mem.Memory { return s.memory }

// FS exposes the file-only-memory file system for named files,
// directories and durability control.
func (s *System) FS() *memfs.FS { return s.fs }

// Stats exposes counters: "maps", "unmaps", "allocs", "chunk_builds",
// "chunk_links".
func (s *System) Stats() *metrics.Set { return s.stats }

// FreeFrames returns the free frames in the file-only-memory store.
func (s *System) FreeFrames() uint64 { return s.fs.FreeFrames() }

// DiscardUnderPressure reclaims whole discardable files until want
// frames are freed (§3.1's transcendent-memory-style reclamation).
func (s *System) DiscardUnderPressure(want uint64) (uint64, error) {
	return s.fs.DiscardForPressure(want)
}

// master returns the pre-created master table for a protection class,
// creating an empty one on first use. cur is the CPU doing the work.
func (s *System) master(cur *sim.CPU, prot pagetable.Flags) (*masterTable, error) {
	if m, ok := s.masters[prot]; ok {
		return m, nil
	}
	t, err := pagetable.New(cur, s.params, s.ptPool.bud, pagetable.Levels4)
	if err != nil {
		return nil, err
	}
	m := &masterTable{table: t, prot: prot, chunks: make(map[mem.VirtAddr]bool)}
	s.masters[prot] = m
	return m, nil
}

// ensureChunk populates one 2 MiB PBM chunk of a master table. The
// first caller pays the 512 PTE writes; the table persists (it lives
// in the system, conceptually in NVM), so every later map of the same
// physical chunk — by any process, ever — is a single link.
func (s *System) ensureChunk(m *masterTable, cur *sim.CPU, chunkVA mem.VirtAddr) error {
	if m.chunks[chunkVA] {
		return nil
	}
	pa, err := PhysForVA(chunkVA)
	if err != nil {
		return err
	}
	if err := m.table.MapRange(cur, chunkVA, pa.Frame(), chunkPages, m.prot); err != nil {
		return err
	}
	m.chunks[chunkVA] = true
	s.stats.Counter("chunk_builds").Inc()
	return nil
}

// CreateContiguousFile creates a named single-extent file of the given
// page count, optionally padded to the SharedPT chunk granularity so it
// can be mapped with subtree links. The allocation is O(1) in size.
func (s *System) CreateContiguousFile(path string, pages uint64, opts memfs.CreateOptions, chunkAligned bool) (*memfs.File, error) {
	alloc := pages
	if chunkAligned {
		if rem := pages % chunkPages; rem != 0 {
			alloc += chunkPages - rem
		}
	}
	f, err := s.fs.Create(path, opts)
	if err != nil {
		return nil, err
	}
	if err := f.EnsureContiguous(alloc); err != nil {
		_ = f.Close()
		_ = s.fs.Unlink(path)
		return nil, err
	}
	return f, nil
}

// Remount recovers the system after a crash: persistent files survive,
// volatile files (and all processes) are gone. Master page tables are
// rebuilt lazily — or, in the paper's fully persistent design, could
// themselves be stored in NVM; the simulator keeps them, modelling
// that.
func (s *System) Remount() (int, error) {
	return s.fs.Remount()
}
