package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/rangetable"
	"repro/internal/sim"
	"repro/internal/tier"
)

// AttachTier connects a tier migration engine to the system: the file
// store gains a fast-tier (DRAM) block region next to its slow (NVM)
// one, every file frame becomes hotness-tracked, and the System
// replaces the file system as the engine's backend. The difference
// matters: the FS backend splits extents to move single pages (the
// object-map story), but a core system's range translations and
// subtree links address whole extents — so here a hot page drags its
// entire extent across tiers, the O(extent) cost the paper's
// O(1)-operations design trades against.
//
// The fast region must not overlap the SharedPT page-table pool, which
// by default covers all of DRAM; tier-enabled systems pass explicit
// Options splitting DRAM between the two.
func (s *System) AttachTier(eng *tier.Engine, fastBase mem.Frame, fastFrames uint64) error {
	if s.tier != nil {
		return fmt.Errorf("core: tier engine already attached")
	}
	pt := s.ptPool.bud
	if fastBase < pt.Base()+mem.Frame(pt.Size()) && pt.Base() < fastBase+mem.Frame(fastFrames) {
		return fmt.Errorf("core: fast region [%d,+%d) overlaps the page-table pool [%d,+%d)",
			fastBase, fastFrames, pt.Base(), pt.Size())
	}
	if err := s.fs.AttachTier(eng, fastBase, fastFrames); err != nil {
		return err
	}
	s.tier = eng
	eng.SetBackend(s) // override the FS's page-split backend
	return nil
}

// Tier returns the attached migration engine (nil without tiering).
func (s *System) Tier() *tier.Engine { return s.tier }

// tierPump executes queued promotions at a quiescent point of the
// access path (see tier.Engine.Pump).
func (s *System) tierPump(cur *sim.CPU) {
	if s.tier != nil {
		s.tier.Pump(cur)
	}
}

// TierScan advances the hotness clock hand over up to batch frames,
// demoting cold fast-tier extents under the demote/smart policies.
// Drivers call it periodically, charging cur.
func (s *System) TierScan(cur *sim.CPU, batch int) {
	if s.tier != nil {
		s.tier.Scan(cur, batch)
	}
}

// MigrateFrame implements tier.Backend for range-translated file-only
// memory: the extent covering f moves to the target tier as a whole,
// and every live mapping of it — range-table entries and linked
// page-table subtrees alike — is rebuilt at the new PBM address with
// one coalesced shootdown round per affected process. Returns the
// extent's page count, so the engine's telemetry shows the O(extent)
// amplification a single hot page causes here.
func (s *System) MigrateFrame(cur *sim.CPU, f mem.Frame, to mem.RegionKind) (uint64, bool) {
	ino := s.fs.Owner(f)
	if ino == nil {
		return 0, false
	}
	old, ok := coveringExtent(ino, f)
	if !ok {
		panic(fmt.Sprintf("core: tier owner index points at frame %d without an extent", f))
	}

	// Collect every live segment over the extent before the FS mutates
	// it, in PID order — Go map iteration must not reach the clocks.
	type remap struct {
		p   *Process
		m   *Mapping
		seg int
	}
	var remaps []remap
	pids := make([]int, 0, len(s.live))
	for pid := range s.live {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := s.live[pid]
		bases := make([]mem.VirtAddr, 0, len(p.mappings))
		for base := range p.mappings {
			bases = append(bases, base)
		}
		sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
		for _, base := range bases {
			m := p.mappings[base]
			if m.file.Inode() != ino {
				continue
			}
			for i, seg := range m.segments {
				if seg.Frame == old.Start && seg.Pages == old.Count && seg.FileOff == old.Logical {
					remaps = append(remaps, remap{p: p, m: m, seg: i})
				}
			}
		}
	}

	// Move the bytes and the extent map. A SharedPT mapper needs the
	// replacement chunk-aligned; the buddy's covering-block alignment
	// guarantees it for the chunk-multiple extents SharedPT links.
	run, ok := s.fs.MigrateExtent(cur, ino, old, to)
	if !ok {
		return 0, false
	}

	// Rebuild each mapper's translations at the new physical (and thus
	// PBM virtual) address. Failures here would strand a half-migrated
	// mapping, which no caller can repair — genuine corruption.
	for _, r := range remaps {
		p := r.p
		oldSeg := r.m.segments[r.seg]
		newSeg := Segment{
			VA:      VAForPhys(run.Start.Addr()),
			Frame:   run.Start,
			Pages:   run.Count,
			FileOff: run.Logical,
		}
		delete(p.mappings, r.m.Base())
		p.beginShoot()
		if err := p.unmapSegmentOn(cur, oldSeg); err != nil {
			panic(fmt.Sprintf("core: tier migration unmap (pid %d): %v", p.pid, err))
		}
		switch p.mode {
		case Ranges:
			if err := p.ranges.Insert(rangetable.Entry{
				VBase: newSeg.VA,
				Pages: newSeg.Pages,
				PBase: newSeg.Frame,
				Flags: r.m.prot,
			}); err != nil {
				panic(fmt.Sprintf("core: tier migration range insert (pid %d): %v", p.pid, err))
			}
		case SharedPT:
			if err := p.linkSegmentOn(cur, newSeg, r.m.prot); err != nil {
				panic(fmt.Sprintf("core: tier migration relink (pid %d): %v", p.pid, err))
			}
		}
		p.flushShootOn(cur)
		r.m.segments[r.seg] = newSeg
		p.mappings[r.m.Base()] = r.m
	}
	s.stats.Counter("tier_extent_migrations").Inc()
	return run.Count, true
}

// coveringExtent finds the extent of ino covering physical frame f.
func coveringExtent(ino *memfs.Inode, f mem.Frame) (memfs.ExtentRun, bool) {
	for _, e := range ino.Extents() {
		if f >= e.Start && f < e.Start+mem.Frame(e.Count) {
			return e, true
		}
	}
	return memfs.ExtentRun{}, false
}
