package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

const rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser
const ro = pagetable.FlagRead | pagetable.FlagUser

func newSystem(t *testing.T) (*System, *sim.Clock) {
	t.Helper()
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{DRAMFrames: 16384, NVMFrames: 1 << 18}) // 1 GiB NVM
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(clock, &params, memory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func bothModes(t *testing.T, fn func(t *testing.T, mode TranslationMode)) {
	t.Helper()
	for _, mode := range []TranslationMode{Ranges, SharedPT} {
		t.Run(mode.String(), func(t *testing.T) { fn(t, mode) })
	}
}

func TestPBMAddressing(t *testing.T) {
	pa := mem.PhysAddr(0x12345678)
	va := VAForPhys(pa)
	got, err := PhysForVA(va)
	if err != nil || got != pa {
		t.Fatalf("round trip: %#x, %v", uint64(got), err)
	}
	if _, err := PhysForVA(0x1000); err == nil {
		t.Fatal("non-PBM address accepted")
	}
}

func TestAllocWriteReadRoundTrip(t *testing.T) {
	bothModes(t, func(t *testing.T, mode TranslationMode) {
		s, _ := newSystem(t)
		p, err := s.NewProcess(mode)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.AllocVolatile(100, rw)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Contiguous() {
			t.Fatal("fresh allocation not contiguous")
		}
		data := bytes.Repeat([]byte("file-only!"), 5000) // 50 KB
		if err := p.WriteBuf(m.Base(), data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := p.ReadBuf(m.Base(), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
		if err := p.Exit(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFreshAllocationIsZero(t *testing.T) {
	bothModes(t, func(t *testing.T, mode TranslationMode) {
		s, _ := newSystem(t)
		p, _ := s.NewProcess(mode)
		// Dirty then free a region, then allocate again and verify
		// zeroes (the O(1)-erase security property).
		m1, err := p.AllocVolatile(64, rw)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.WriteBuf(m1.Base(), bytes.Repeat([]byte{0xFF}, 64*mem.FrameSize)); err != nil {
			t.Fatal(err)
		}
		if err := p.Unmap(m1); err != nil {
			t.Fatal(err)
		}
		m2, err := p.AllocVolatile(64, rw)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64*mem.FrameSize)
		if err := p.ReadBuf(m2.Base(), buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("[%v] reused memory leaked byte %#x at %d", mode, b, i)
			}
		}
	})
}

// TestAllocCostIndependentOfSize is the paper's headline property:
// allocating and mapping memory costs the same whether it is 16 pages
// or a quarter million.
func TestAllocCostIndependentOfSize(t *testing.T) {
	bothModes(t, func(t *testing.T, mode TranslationMode) {
		s, clock := newSystem(t)
		p, _ := s.NewProcess(mode)

		cost := func(pages uint64) sim.Time {
			t0 := clock.Now()
			m, err := p.AllocVolatile(pages, rw)
			if err != nil {
				t.Fatal(err)
			}
			d := clock.Since(t0)
			if err := p.Unmap(m); err != nil {
				t.Fatal(err)
			}
			return d
		}
		// Warm up (builds master chunks in SharedPT mode — the
		// amortized pre-created page tables).
		cost(1 << 16)
		small := cost(16)
		large := cost(1 << 16) // 256 MiB
		ratio := float64(large) / float64(small)
		limit := 3.0
		if mode == SharedPT {
			// SharedPT pays one link per 2 MiB: 128 links for 256 MiB.
			limit = 64
		}
		if ratio > limit {
			t.Fatalf("alloc cost grows with size: 16 pages %v, 65536 pages %v (ratio %.1f > %.1f)",
				small, large, ratio, limit)
		}
	})
}

func TestMapFileSharedAcrossProcesses(t *testing.T) {
	bothModes(t, func(t *testing.T, mode TranslationMode) {
		s, _ := newSystem(t)
		f, err := s.CreateContiguousFile("/shared", 512, memfs.CreateOptions{}, true)
		if err != nil {
			t.Fatal(err)
		}
		p1, _ := s.NewProcess(mode)
		p2, _ := s.NewProcess(mode)
		m1, err := p1.MapFile(f, rw)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := p2.MapFile(f, rw)
		if err != nil {
			t.Fatal(err)
		}
		// PBM: identical virtual addresses in every process.
		if m1.Base() != m2.Base() {
			t.Fatalf("PBM addresses differ: %#x vs %#x", uint64(m1.Base()), uint64(m2.Base()))
		}
		// Writes by one process are visible to the other.
		if err := p1.WriteBuf(m1.Base()+12345, []byte("cross-process")); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 13)
		if err := p2.ReadBuf(m2.Base()+12345, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "cross-process" {
			t.Fatalf("p2 read %q", got)
		}
		if err := p1.Exit(); err != nil {
			t.Fatal(err)
		}
		if err := p2.Exit(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
}

// TestNthProcessMapIsO1 verifies the Figure 3/8 property: after the
// first process has mapped a file, each additional process maps it
// with constant work per 2 MiB chunk (SharedPT) or per extent (Ranges),
// never per page.
func TestNthProcessMapIsO1(t *testing.T) {
	s, clock := newSystem(t)
	f, err := s.CreateContiguousFile("/big", 16*512, memfs.CreateOptions{}, true) // 32 MiB
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// First SharedPT process pays chunk construction.
	p1, _ := s.NewProcess(SharedPT)
	t0 := clock.Now()
	if _, err := p1.MapFile(f, rw); err != nil {
		t.Fatal(err)
	}
	firstCost := clock.Since(t0)

	// Later processes only link.
	p2, _ := s.NewProcess(SharedPT)
	t1 := clock.Now()
	if _, err := p2.MapFile(f, rw); err != nil {
		t.Fatal(err)
	}
	laterCost := clock.Since(t1)

	if laterCost*10 > firstCost {
		t.Fatalf("shared map not amortized: first %v, later %v", firstCost, laterCost)
	}
	// And the later cost must be far below per-page PTE writes.
	params := sim.DefaultParams()
	perPage := sim.Time(16*512) * params.PTEWrite
	if laterCost >= perPage {
		t.Fatalf("later map cost %v >= per-page cost %v", laterCost, perPage)
	}
}

func TestProtectionEnforced(t *testing.T) {
	bothModes(t, func(t *testing.T, mode TranslationMode) {
		s, _ := newSystem(t)
		p, _ := s.NewProcess(mode)
		m, err := p.AllocVolatile(chunkPages, rw)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.WriteByteAt(m.Base(), 1); err != nil {
			t.Fatal(err)
		}
		if err := p.Protect(m, ro); err != nil {
			t.Fatalf("Protect: %v", err)
		}
		var ae *AccessError
		if err := p.WriteByteAt(m.Base(), 2); !errors.As(err, &ae) {
			t.Fatalf("write after RO protect: %v", err)
		}
		if _, err := p.ReadByteAt(m.Base()); err != nil {
			t.Fatalf("read after RO protect: %v", err)
		}
		if err := p.Protect(m, rw); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteByteAt(m.Base(), 3); err != nil {
			t.Fatalf("write after RW protect: %v", err)
		}
	})
}

func TestMapFileModeExceeded(t *testing.T) {
	s, _ := newSystem(t)
	f, err := s.CreateContiguousFile("/ro", 512, memfs.CreateOptions{Mode: ro}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, _ := s.NewProcess(Ranges)
	if _, err := p.MapFile(f, rw); err == nil {
		t.Fatal("RW mapping of RO file accepted")
	}
	if _, err := p.MapFile(f, ro); err != nil {
		t.Fatal(err)
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	bothModes(t, func(t *testing.T, mode TranslationMode) {
		s, _ := newSystem(t)
		p, _ := s.NewProcess(mode)
		var ae *AccessError
		if err := p.Touch(PBMBase+0x123000, false); !errors.As(err, &ae) {
			t.Fatalf("unmapped touch: %v", err)
		}
		m, _ := p.AllocVolatile(chunkPages, rw)
		if err := p.Unmap(m); err != nil {
			t.Fatal(err)
		}
		if err := p.Touch(m.Base(), false); !errors.As(err, &ae) {
			t.Fatalf("touch after unmap: %v", err)
		}
	})
}

func TestExitReclaimsEverything(t *testing.T) {
	bothModes(t, func(t *testing.T, mode TranslationMode) {
		s, _ := newSystem(t)
		free0 := s.FreeFrames()
		p, _ := s.NewProcess(mode)
		for i := 0; i < 10; i++ {
			if _, err := p.AllocVolatile(uint64(64*(i+1)), rw); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Exit(); err != nil {
			t.Fatal(err)
		}
		if got := s.FreeFrames(); got != free0 {
			t.Fatalf("frames leaked at exit: %d -> %d", free0, got)
		}
		if _, err := p.AllocVolatile(1, rw); err == nil {
			t.Fatal("alloc after exit accepted")
		}
		if err := p.Exit(); err == nil {
			t.Fatal("double exit accepted")
		}
	})
}

func TestNamedFilePersistsAcrossCrash(t *testing.T) {
	s, _ := newSystem(t)
	f, err := s.CreateContiguousFile("/db", 512, memfs.CreateOptions{Durability: memfs.Persistent}, true)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.NewProcess(Ranges)
	m, err := p.MapFile(f, rw)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBuf(m.Base(), []byte("survives crashes")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Crash: processes die, volatile files vanish, NVM persists.
	s.Memory().Crash()
	if _, err := s.Remount(); err != nil {
		t.Fatal(err)
	}

	g, err := s.FS().Open("/db")
	if err != nil {
		t.Fatalf("persistent file lost: %v", err)
	}
	p2, _ := s.NewProcess(Ranges)
	m2, err := p2.MapFile(g, ro)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := p2.ReadBuf(m2.Base(), got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives crashes" {
		t.Fatalf("data after crash: %q", got)
	}
}

func TestDiscardUnderPressure(t *testing.T) {
	s, _ := newSystem(t)
	f, err := s.CreateContiguousFile("/cache", 1024, memfs.CreateOptions{Discardable: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	free0 := s.FreeFrames()
	freed, err := s.DiscardUnderPressure(512)
	if err != nil {
		t.Fatal(err)
	}
	if freed < 512 {
		t.Fatalf("freed %d, want >= 512", freed)
	}
	if s.FreeFrames() <= free0 {
		t.Fatal("no frames returned")
	}
}

func TestVAForOffsetAndSegments(t *testing.T) {
	s, _ := newSystem(t)
	p, _ := s.NewProcess(Ranges)
	m, err := p.AllocVolatile(100, rw)
	if err != nil {
		t.Fatal(err)
	}
	va, err := m.VAForOffset(50 * mem.FrameSize)
	if err != nil {
		t.Fatal(err)
	}
	if va != m.Base()+50*mem.FrameSize {
		t.Fatalf("VAForOffset = %#x", uint64(va))
	}
	if _, err := m.VAForOffset(200 * mem.FrameSize); err == nil {
		t.Fatal("offset beyond mapping accepted")
	}
	segs := m.Segments()
	if len(segs) != 1 || segs[0].Pages != 100 {
		t.Fatalf("segments = %+v", segs)
	}
	if m.Bytes() != 100*mem.FrameSize || m.Pages() != 100 {
		t.Fatal("size accessors wrong")
	}
	if m.Prot() != rw || m.File() == nil {
		t.Fatal("attribute accessors wrong")
	}
}

func TestModeString(t *testing.T) {
	if Ranges.String() != "ranges" || SharedPT.String() != "shared-pt" {
		t.Fatal("mode strings")
	}
}

func TestMapEmptyFileRejected(t *testing.T) {
	s, _ := newSystem(t)
	f, err := s.FS().Create("/empty", memfs.CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, _ := s.NewProcess(Ranges)
	if _, err := p.MapFile(f, rw); err == nil {
		t.Fatal("empty file mapping accepted")
	}
}

func TestForeignMappingOwnership(t *testing.T) {
	s, _ := newSystem(t)
	p1, _ := s.NewProcess(Ranges)
	p2, _ := s.NewProcess(Ranges)
	m, _ := p1.AllocVolatile(16, rw)
	if err := p2.Unmap(m); err == nil {
		t.Fatal("unmap of foreign mapping accepted")
	}
	if err := p1.Unmap(m); err != nil {
		t.Fatal(err)
	}
	if err := p1.Unmap(m); err == nil {
		t.Fatal("double unmap accepted")
	}
}

// Property: for random allocation sizes, data written at random
// offsets reads back identically, and the frames of distinct live
// mappings never overlap.
func TestAllocQuickProperty(t *testing.T) {
	s, _ := newSystem(t)
	p, _ := s.NewProcess(Ranges)
	owned := make(map[mem.Frame]bool)
	var live []*Mapping
	fn := func(pages16 uint16, probe uint32, val byte) bool {
		pages := uint64(pages16)%2048 + 1
		m, err := p.AllocVolatile(pages, rw)
		if err != nil {
			t.Logf("alloc: %v", err)
			return false
		}
		for _, seg := range m.Segments() {
			for f := seg.Frame; f < seg.Frame+mem.Frame(seg.Pages); f++ {
				if owned[f] {
					t.Logf("frame %d double-owned", f)
					return false
				}
				owned[f] = true
			}
		}
		off := uint64(probe) % m.Bytes()
		if err := p.WriteByteAt(m.Base()+mem.VirtAddr(off), val); err != nil {
			return false
		}
		got, err := p.ReadByteAt(m.Base() + mem.VirtAddr(off))
		if err != nil || got != val {
			return false
		}
		live = append(live, m)
		if len(live) > 8 {
			victim := live[0]
			live = live[1:]
			for _, seg := range victim.Segments() {
				for f := seg.Frame; f < seg.Frame+mem.Frame(seg.Pages); f++ {
					delete(owned, f)
				}
			}
			if err := p.Unmap(victim); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if err := s.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGigabyteSubtreeLinks(t *testing.T) {
	// A machine whose NVM region starts 1 GiB-aligned and holds 4 GiB,
	// so order-18 (1 GiB) buddy blocks exist.
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 1 << 30 >> mem.FrameShift,
		NVMFrames:  4 << 30 >> mem.FrameShift,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(clock, &params, memory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := s.NewProcess(SharedPT)
	// 1 GiB allocation: buddy hands back a 1 GiB-aligned block, so the
	// whole thing links at level 3 — one entry write.
	gig := uint64(1) << 30 >> 12
	m1, err := p1.AllocVolatile(gig, rw)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Value("chunk_links"); got != 1 {
		t.Fatalf("chunk_links = %d, want 1 (one level-3 link)", got)
	}
	if got := s.Stats().Value("chunk_builds"); got != 512 {
		t.Fatalf("chunk_builds = %d, want 512 (one-time)", got)
	}
	// Data plane works through the gig link.
	if err := p1.WriteBuf(m1.Base()+512<<20, []byte("mid-gig")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if err := p1.ReadBuf(m1.Base()+512<<20, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "mid-gig" {
		t.Fatalf("read %q", got)
	}
	if err := p1.Unmap(m1); err != nil {
		t.Fatal(err)
	}

	// Steady state: realloc of the same GiB is a single link with no
	// new chunk builds.
	before := clock.Now()
	m2, err := p1.AllocVolatile(gig, rw)
	if err != nil {
		t.Fatal(err)
	}
	cost := clock.Since(before)
	if got := s.Stats().Value("chunk_builds"); got != 512 {
		t.Fatalf("chunk rebuilds after reuse: %d", got)
	}
	// The steady-state 1 GiB map must cost about the same as a small
	// one (single-entry link).
	small := clock.Now()
	m3, err := p1.AllocVolatile(chunkPages, rw)
	if err != nil {
		t.Fatal(err)
	}
	smallCost := clock.Since(small)
	if cost > 3*smallCost {
		t.Fatalf("steady-state 1GiB map (%v) not O(1) vs 2MiB map (%v)", cost, smallCost)
	}
	if err := p1.Unmap(m2); err != nil {
		t.Fatal(err)
	}
	if err := p1.Unmap(m3); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentedFileMapsAcrossSegments(t *testing.T) {
	s, _ := newSystem(t)
	fs := s.FS()
	// Fragment the store: allocate pinning files, carve holes.
	var pins []*memfs.File
	for i := 0; i < 8; i++ {
		f, err := fs.Create(fmt.Sprintf("/pin%d", i), memfs.CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(96 * mem.FrameSize); err != nil {
			t.Fatal(err)
		}
		pins = append(pins, f)
	}
	for i := 0; i < 8; i += 2 {
		if err := pins[i].Truncate(0); err != nil {
			t.Fatal(err)
		}
	}
	// A file larger than any hole must come back multi-extent.
	frag, err := fs.Create("/frag", memfs.CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := frag.Truncate(200 * mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	if len(frag.Inode().Extents()) < 2 {
		t.Skipf("store did not fragment (got %d extents)", len(frag.Inode().Extents()))
	}

	p, _ := s.NewProcess(Ranges)
	m, err := p.MapFile(frag, rw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Contiguous() {
		t.Fatal("multi-extent mapping reported contiguous")
	}
	// Write a pattern across every segment boundary via VAForOffset.
	for page := uint64(0); page < 200; page += 7 {
		va, err := m.VAForOffset(page * mem.FrameSize)
		if err != nil {
			t.Fatalf("VAForOffset(%d): %v", page, err)
		}
		if err := p.WriteByteAt(va, byte(page)); err != nil {
			t.Fatal(err)
		}
	}
	for page := uint64(0); page < 200; page += 7 {
		va, _ := m.VAForOffset(page * mem.FrameSize)
		b, err := p.ReadByteAt(va)
		if err != nil || b != byte(page) {
			t.Fatalf("page %d: %d, %v", page, b, err)
		}
	}
	// The data is the file's: read it back through the file API.
	var buf [1]byte
	if _, err := frag.ReadAt(buf[:], 7*mem.FrameSize); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatalf("file sees %d at page 7", buf[0])
	}
	if err := p.Unmap(m); err != nil {
		t.Fatal(err)
	}
}

func TestRTLBPressureManyMappings(t *testing.T) {
	s, _ := newSystem(t)
	p, err := s.NewProcess(Ranges)
	if err != nil {
		t.Fatal(err)
	}
	// More live mappings than RTLB entries (default 32): correctness
	// must hold, with range-table walks backfilling misses.
	const n = 64
	var maps [n]*Mapping
	for i := 0; i < n; i++ {
		m, err := p.AllocVolatile(4, rw)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.WriteByteAt(m.Base(), byte(i)); err != nil {
			t.Fatal(err)
		}
		maps[i] = m
	}
	p.RTLB().Stats().Reset()
	for i := 0; i < n; i++ {
		b, err := p.ReadByteAt(maps[i].Base())
		if err != nil {
			t.Fatal(err)
		}
		if b != byte(i) {
			t.Fatalf("mapping %d reads %d", i, b)
		}
	}
	if p.RTLB().Stats().Value("misses") == 0 {
		t.Fatal("expected RTLB misses with 64 live mappings in a 32-entry RTLB")
	}
	if p.RangeTable().Len() != n {
		t.Fatalf("range table holds %d entries, want %d", p.RangeTable().Len(), n)
	}
	if err := p.Exit(); err != nil {
		t.Fatal(err)
	}
}

func TestMasterTablesPersistAcrossCrash(t *testing.T) {
	// §3.1: "pre-created page tables can be stored persistently, so
	// that even when mapping a file the first time, an existing page
	// table can be re-used for O(1) operations." The system models
	// masters as persistent: after a crash + remount, mapping the same
	// persistent file builds no new chunks.
	s, _ := newSystem(t)
	f, err := s.CreateContiguousFile("/lib", 4*chunkPages,
		memfs.CreateOptions{Durability: memfs.Persistent}, true)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := s.NewProcess(SharedPT)
	if _, err := p1.MapFile(f, ro); err != nil {
		t.Fatal(err)
	}
	builds := s.Stats().Value("chunk_builds")
	if builds == 0 {
		t.Fatal("no chunks built on first map")
	}
	f.Close()

	s.Memory().Crash()
	if _, err := s.Remount(); err != nil {
		t.Fatal(err)
	}
	g, err := s.FS().Open("/lib")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := s.NewProcess(SharedPT)
	if _, err := p2.MapFile(g, ro); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Value("chunk_builds"); got != builds {
		t.Fatalf("chunks rebuilt after crash: %d -> %d", builds, got)
	}
}
