package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/rangetable"
	"repro/internal/tlb"
)

// AccessError reports an invalid access in a file-only-memory process.
type AccessError struct {
	VA    mem.VirtAddr
	Write bool
	Cause string
}

// Error implements error.
func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("core: invalid %s at %#x: %s", kind, uint64(e.VA), e.Cause)
}

// Touch simulates one memory access. There is no fault path: every
// byte of every mapping is translatable immediately after the O(1)
// map, so the worst case is a range-table walk or page walk.
func (p *Process) Touch(va mem.VirtAddr, write bool) error {
	_, err := p.translate(va, write)
	p.sys.tierPump(p.cpu)
	return err
}

func (p *Process) translate(va mem.VirtAddr, write bool) (mem.PhysAddr, error) {
	p.run()
	p.cTouches.Inc()
	switch p.mode {
	case Ranges:
		return p.translateRanges(va, write)
	default:
		return p.translateSharedPT(va, write)
	}
}

func (p *Process) translateRanges(va mem.VirtAddr, write bool) (mem.PhysAddr, error) {
	rtlb := p.sys.rtlbs[p.cpu.ID()]
	e, hit := rtlb.Lookup(p.pid, va)
	if !hit {
		var ok bool
		e, ok = p.ranges.Lookup(va)
		if !ok {
			return 0, &AccessError{VA: va, Write: write, Cause: "no range translation"}
		}
		rtlb.Insert(p.pid, e)
	}
	if err := checkProt(e.Flags, va, write); err != nil {
		return 0, err
	}
	pa := e.Translate(va)
	p.chargeDataRef(pa, write)
	return pa, nil
}

func (p *Process) translateSharedPT(va mem.VirtAddr, write bool) (mem.PhysAddr, error) {
	cur := p.cpu
	ptlb := p.sys.tlbs[cur.ID()]
	if tr, hit := ptlb.Lookup(p.pid, va); hit {
		if err := checkProt(tr.Flags, va, write); err != nil {
			return 0, err
		}
		pa := tr.Translate(va)
		p.chargeDataRef(pa, write)
		return pa, nil
	}
	pa, flags, _, ok := p.pt.Walk(cur, va)
	if !ok {
		return 0, &AccessError{VA: va, Write: write, Cause: "no page-table translation"}
	}
	if err := checkProt(flags, va, write); err != nil {
		return 0, err
	}
	size, _ := tlb.SizeForFrames(p.pt.PageSize(va) / mem.FrameSize)
	base := pa - mem.PhysAddr(uint64(va)%p.pt.PageSize(va))
	ptlb.Insert(p.pid, va, tlb.Translation{Frame: base.Frame(), Size: size, Flags: flags})
	p.chargeDataRef(pa, write)
	return pa, nil
}

func checkProt(flags pagetable.Flags, va mem.VirtAddr, write bool) error {
	if write && flags&pagetable.FlagWrite == 0 {
		return &AccessError{VA: va, Write: true, Cause: "write to read-only mapping"}
	}
	if !write && flags&pagetable.FlagRead == 0 {
		return &AccessError{VA: va, Write: false, Cause: "read from unreadable mapping"}
	}
	return nil
}

func (p *Process) chargeDataRef(pa mem.PhysAddr, write bool) {
	s := p.sys
	cost := s.params.MemRef
	if s.memory.Kind(pa.Frame()) == mem.NVM {
		if write {
			cost += s.params.NVMWritePenalty
		} else {
			cost += s.params.NVMReadPenalty
		}
	}
	s.clock.Advance(cost)
	if s.tier != nil {
		s.tier.Record(pa.Frame(), write)
	}
}

// WriteBuf stores buf at va through the translation path.
func (p *Process) WriteBuf(va mem.VirtAddr, buf []byte) error {
	for len(buf) > 0 {
		pa, err := p.translate(va, true)
		if err != nil {
			return err
		}
		n := mem.FrameSize - va.PageOffset()
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		p.sys.memory.WriteAt(pa, buf[:n])
		buf = buf[n:]
		va += mem.VirtAddr(n)
	}
	p.sys.tierPump(p.cpu)
	return nil
}

// ReadBuf loads len(buf) bytes from va through the translation path.
func (p *Process) ReadBuf(va mem.VirtAddr, buf []byte) error {
	for len(buf) > 0 {
		pa, err := p.translate(va, false)
		if err != nil {
			return err
		}
		n := mem.FrameSize - va.PageOffset()
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		p.sys.memory.ReadAt(pa, buf[:n])
		buf = buf[n:]
		va += mem.VirtAddr(n)
	}
	p.sys.tierPump(p.cpu)
	return nil
}

// ReadByteAt loads one byte via the translation path.
func (p *Process) ReadByteAt(va mem.VirtAddr) (byte, error) {
	var b [1]byte
	if err := p.ReadBuf(va, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteByteAt stores one byte via the translation path.
func (p *Process) WriteByteAt(va mem.VirtAddr, v byte) error {
	return p.WriteBuf(va, []byte{v})
}

// RTLB exposes the range TLB of the process's home CPU. With one CPU
// (the default) this is the machine's only range TLB.
func (p *Process) RTLB() *rangetable.RTLB { return p.sys.rtlbs[p.cpu.ID()] }

// TLB exposes the page TLB of the process's home CPU.
func (p *Process) TLB() *tlb.TLB { return p.sys.tlbs[p.cpu.ID()] }
