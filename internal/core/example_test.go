package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// Example shows the full file-only-memory flow: build a machine,
// allocate volatile memory as a file in O(1), use it, and reclaim it
// as a whole file.
func Example() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, err := mem.New(clock, &params, mem.Config{
		DRAMFrames: 64 << 20 >> mem.FrameShift,
		NVMFrames:  1 << 30 >> mem.FrameShift,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(clock, &params, memory, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.NewProcess(core.Ranges)
	if err != nil {
		log.Fatal(err)
	}

	const rw = pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser
	m, err := p.AllocVolatile(1024, rw) // 4 MiB, one extent, O(1)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.WriteBuf(m.Base(), []byte("order-one")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 9)
	if err := p.ReadBuf(m.Base(), buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, extents=%d, contiguous=%v\n", buf, len(m.Segments()), m.Contiguous())
	if err := p.Unmap(m); err != nil {
		log.Fatal(err)
	}
	// Output: order-one, extents=1, contiguous=true
}

// ExampleSystem_Remount demonstrates crash recovery: persistent files
// survive, volatile memory does not.
func ExampleSystem_Remount() {
	clock := &sim.Clock{}
	params := sim.DefaultParams()
	memory, _ := mem.New(clock, &params, mem.Config{
		DRAMFrames: 16 << 20 >> mem.FrameShift,
		NVMFrames:  256 << 20 >> mem.FrameShift,
	})
	sys, _ := core.NewSystem(clock, &params, memory, core.Options{})

	f, err := sys.CreateContiguousFile("/state", 16,
		memfs.CreateOptions{Durability: memfs.Persistent}, false)
	if err != nil {
		log.Fatal(err)
	}
	p, _ := sys.NewProcess(core.Ranges)
	m, _ := p.MapFile(f, pagetable.FlagRead|pagetable.FlagWrite|pagetable.FlagUser)
	if err := p.WriteBuf(m.Base(), []byte("durable")); err != nil {
		log.Fatal(err)
	}

	memory.Crash()
	dropped, _ := sys.Remount()

	g, err := sys.FS().Open("/state")
	if err != nil {
		log.Fatal(err)
	}
	p2, _ := sys.NewProcess(core.Ranges)
	m2, _ := p2.MapFile(g, pagetable.FlagRead|pagetable.FlagUser)
	buf := make([]byte, 7)
	if err := p2.ReadBuf(m2.Base(), buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %q (volatile files dropped: %v)\n", buf, dropped >= 0)
	// Output: recovered "durable" (volatile files dropped: true)
}
