package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/rangetable"
	"repro/internal/tlb"
)

// CheckInvariants audits the file-only-memory system: file-system
// extent/frame consistency, page-table-pool accounting, the PBM
// identity of every installed translation (range-table entries, linked
// subtrees, master tables), the mapping ↔ translation bijection per
// live process, and the freshness of every per-CPU TLB and range-TLB
// entry. It is registered with the machine at system construction and
// charges no simulated time.
func (s *System) CheckInvariants() error {
	if err := s.fs.CheckInvariants(); err != nil {
		return err
	}
	if err := s.ptPool.bud.CheckInvariants(); err != nil {
		return err
	}

	// Master tables: every pre-created leaf must be a PBM identity
	// mapping with its table's protection class.
	for prot, m := range s.masters {
		if err := m.table.CheckInvariants(); err != nil {
			return fmt.Errorf("core: master table %s: %w", prot, err)
		}
		if err := checkIdentityLeaves(m.table, fmt.Sprintf("master %s", prot), &prot); err != nil {
			return err
		}
		if err := m.table.SpareScrubbed(); err != nil {
			return fmt.Errorf("core: master table %s: %w", prot, err)
		}
	}

	// Per-process translation state.
	for pid, p := range s.live {
		if p.pid != pid {
			return fmt.Errorf("core: process registered under PID %d but carries %d", pid, p.pid)
		}
		if p.exited {
			return fmt.Errorf("core: exited process %d still registered", pid)
		}
		switch p.mode {
		case Ranges:
			if err := p.checkRanges(); err != nil {
				return err
			}
		case SharedPT:
			if err := p.checkSharedPT(); err != nil {
				return err
			}
		}
	}

	// Per-CPU caches: every cached translation must belong to a live
	// process of the matching mode and agree with its tables. PIDs are
	// never reused, so a dead PID proves a missed shootdown.
	for cpuID, r := range s.rtlbs {
		var rtlbErr error
		r.VisitEntries(func(pid int, e rangetable.Entry) {
			if rtlbErr != nil {
				return
			}
			p, ok := s.live[pid]
			if !ok || p.mode != Ranges {
				rtlbErr = fmt.Errorf("core: CPU %d range TLB holds entry at %#x for dead or non-range PID %d",
					cpuID, uint64(e.VBase), pid)
				return
			}
			got, ok := p.ranges.LookupNoCharge(e.VBase)
			if !ok || got != e {
				rtlbErr = fmt.Errorf("core: CPU %d range TLB entry (pid %d, %#x,+%d pages) disagrees with the range table",
					cpuID, pid, uint64(e.VBase), e.Pages)
			}
		})
		if rtlbErr != nil {
			return rtlbErr
		}
	}
	for cpuID, t := range s.tlbs {
		var tlbErr error
		t.VisitEntries(func(pid int, va mem.VirtAddr, tr tlb.Translation) {
			if tlbErr != nil {
				return
			}
			p, ok := s.live[pid]
			if !ok || p.mode != SharedPT {
				tlbErr = fmt.Errorf("core: CPU %d TLB holds entry at %#x for dead or non-shared-pt PID %d",
					cpuID, uint64(va), pid)
				return
			}
			pa, flags, ok := p.pt.Lookup(va)
			if !ok {
				tlbErr = fmt.Errorf("core: CPU %d TLB caches pid %d va %#x, which is no longer mapped", cpuID, pid, uint64(va))
				return
			}
			if pa.Frame() != tr.Frame || flags != tr.Flags {
				tlbErr = fmt.Errorf("core: CPU %d TLB entry (pid %d, va %#x) disagrees with the page table", cpuID, pid, uint64(va))
			}
		})
		if tlbErr != nil {
			return tlbErr
		}
	}
	return nil
}

// checkRanges validates a Ranges-mode process: the range table must be
// internally consistent, every entry must be a PBM identity
// translation, and entries must correspond one-to-one with the
// segments of the process's mappings.
func (p *Process) checkRanges() error {
	if err := p.ranges.CheckInvariants(); err != nil {
		return fmt.Errorf("core: pid %d: %w", p.pid, err)
	}
	entries := make(map[mem.VirtAddr]rangetable.Entry)
	for _, e := range p.ranges.Entries() {
		if e.VBase != VAForPhys(e.PBase.Addr()) {
			return fmt.Errorf("core: pid %d range entry at %#x is not a PBM identity mapping of frame %d",
				p.pid, uint64(e.VBase), e.PBase)
		}
		entries[e.VBase] = e
	}
	segs := 0
	for _, m := range p.mappings {
		for _, seg := range m.segments {
			segs++
			e, ok := entries[seg.VA]
			if !ok {
				return fmt.Errorf("core: pid %d segment at %#x has no range-table entry", p.pid, uint64(seg.VA))
			}
			if e.PBase != seg.Frame || e.Pages != seg.Pages || e.Flags != m.prot {
				return fmt.Errorf("core: pid %d segment at %#x disagrees with its range entry", p.pid, uint64(seg.VA))
			}
		}
	}
	if segs != len(entries) {
		return fmt.Errorf("core: pid %d has %d mapped segments but %d range entries", p.pid, segs, len(entries))
	}
	return nil
}

// checkSharedPT validates a SharedPT-mode process: the page table must
// be internally consistent and every reachable leaf — including leaves
// inside subtrees linked from the masters — must be a PBM identity
// mapping.
func (p *Process) checkSharedPT() error {
	if err := p.pt.CheckInvariants(); err != nil {
		return fmt.Errorf("core: pid %d: %w", p.pid, err)
	}
	if err := checkIdentityLeaves(p.pt, fmt.Sprintf("pid %d", p.pid), nil); err != nil {
		return err
	}
	return p.pt.SpareScrubbed()
}

// checkIdentityLeaves asserts that every present leaf of t maps its
// virtual address to the identical physical address under the PBM
// offset. If prot is non-nil, leaf flags must equal *prot.
func checkIdentityLeaves(t *pagetable.Table, who string, prot *pagetable.Flags) error {
	var leafErr error
	t.VisitLeaves(func(va mem.VirtAddr, frame mem.Frame, pages uint64, flags pagetable.Flags) {
		if leafErr != nil {
			return
		}
		if va != VAForPhys(frame.Addr()) {
			leafErr = fmt.Errorf("core: %s leaf at %#x maps frame %d, breaking the PBM identity", who, uint64(va), frame)
			return
		}
		if prot != nil && flags != *prot {
			leafErr = fmt.Errorf("core: %s leaf at %#x has flags %s, want %s", who, uint64(va), flags, *prot)
		}
	})
	return leafErr
}
