package core

import (
	"fmt"
	"sort"

	"repro/internal/buddy"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/metrics"
	"repro/internal/pagetable"
	"repro/internal/rangetable"
	"repro/internal/sim"
	"repro/internal/tlb"
)

// ptPool allocates page-table node frames for SharedPT mode.
type ptPool struct {
	bud *buddy.Allocator
}

func newPTPool(clock *sim.Clock, params *sim.Params, base mem.Frame, frames uint64) (*ptPool, error) {
	bud, err := buddy.New(clock, params, base, frames)
	if err != nil {
		return nil, err
	}
	return &ptPool{bud: bud}, nil
}

// Process is one file-only-memory address space. Depending on the
// system's hardware assumption it translates PBM addresses either with
// a range table + range TLB (Ranges) or with a conventional page table
// built from shared pre-created subtrees (SharedPT).
type Process struct {
	sys  *System
	pid  int // doubles as the ASID tagging this process's TLB entries
	mode TranslationMode
	cpu  *sim.CPU // home CPU; syscalls and accesses execute here

	// cpuMask[i] records that the process ever ran on CPU i — the
	// mm_cpumask. Translations tagged with this PID can only have been
	// cached on masked CPUs (translate fills the executing CPU's cache,
	// and execution happens only via RunOn/MarkRanOn-tracked CPUs), so
	// shootdowns IPI exactly the masked CPUs instead of broadcasting.
	cpuMask []bool

	// shoot batches the translation invalidations of one unmap burst
	// into a single shootdown round (see flushShoot).
	shoot shootList

	// Ranges mode state. The range TLB itself is per-CPU (sys.rtlbs).
	ranges *rangetable.Table

	// SharedPT mode state. The page TLB itself is per-CPU (sys.tlbs).
	pt *pagetable.Table

	mappings map[mem.VirtAddr]*Mapping // keyed by first segment VA
	exited   bool

	stats *metrics.Set
	// cTouches is the cached per-access counter (translate is the
	// hottest loop in the range experiments).
	cTouches *metrics.Counter
}

// NewProcess creates a process using the given translation mode,
// scheduled round-robin onto the machine's CPUs.
func (s *System) NewProcess(mode TranslationMode) (*Process, error) {
	cpu := s.machine.CPU(s.nextCPU % s.machine.NumCPUs())
	s.nextCPU++
	return s.NewProcessOn(cpu, mode)
}

// NewProcessOn creates a process pinned to the given CPU.
func (s *System) NewProcessOn(cpu *sim.CPU, mode TranslationMode) (*Process, error) {
	s.procs++
	p := &Process{
		sys:      s,
		pid:      s.procs,
		mode:     mode,
		cpu:      cpu,
		cpuMask:  make([]bool, s.machine.NumCPUs()),
		mappings: make(map[mem.VirtAddr]*Mapping),
		stats:    metrics.NewSet(),
	}
	p.cTouches = p.stats.Counter("touches")
	p.cpuMask[cpu.ID()] = true
	if !s.machine.FreeRunning() {
		s.machine.SetCurrent(cpu)
	}
	switch mode {
	case Ranges:
		p.ranges = rangetable.New(s.clock, s.params)
	case SharedPT:
		pt, err := pagetable.New(cpu, s.params, s.ptPool.bud, pagetable.Levels4)
		if err != nil {
			return nil, err
		}
		p.pt = pt
	default:
		return nil, fmt.Errorf("core: unknown translation mode %d", mode)
	}
	s.live[p.pid] = p
	return p, nil
}

// CPU returns the process's home CPU.
func (p *Process) CPU() *sim.CPU { return p.cpu }

// RunOn migrates the process to cpu: subsequent syscalls and accesses
// execute (and are charged) there. The previous CPU stays in the
// shootdown mask — its caches may still hold this PID's translations.
func (p *Process) RunOn(cpu *sim.CPU) {
	p.cpu = cpu
	p.cpuMask[cpu.ID()] = true
}

// MarkRanOn adds cpu to the shootdown mask without migrating the home
// CPU: the mm_cpumask effect of a thread briefly scheduled there.
func (p *Process) MarkRanOn(cpu *sim.CPU) { p.cpuMask[cpu.ID()] = true }

// run switches machine execution to the process's home CPU: syscalls
// and memory accesses below charge that CPU's clock. During a
// host-parallel free-running window there is no single current CPU and
// nothing to set: the paths below charge the home CPU explicitly.
func (p *Process) run() {
	if p.sys.machine.FreeRunning() {
		return
	}
	p.sys.machine.SetCurrent(p.cpu)
}

// shootTargets returns the masked CPUs other than cur, in ID order —
// the IPI targets of a shootdown initiated on cur. cur is normally the
// home CPU, but a tier migration flushes from whichever CPU runs the
// migration engine, which must then IPI the home CPU too.
func (p *Process) shootTargets(cur *sim.CPU) []*sim.CPU {
	var out []*sim.CPU
	for id, ran := range p.cpuMask {
		if ran && id != cur.ID() {
			out = append(out, p.sys.machine.CPU(id))
		}
	}
	return out
}

// shootList accumulates the translation invalidations of one unmap
// burst (an Unmap, Protect, or Exit): range-table bases in Ranges
// mode, subtree units in SharedPT mode. Queuing an entry charges the
// flush-list maintenance cost; the whole list is then flushed with ONE
// IPI round to the masked CPUs — the mmu_gather-style batching a real
// kernel performs — instead of one round per segment.
type shootList struct {
	active bool
	rbases []mem.VirtAddr
	units  []linkUnit
}

// beginShoot opens a deferred-shootdown batch. Batches do not nest.
func (p *Process) beginShoot() {
	if p.shoot.active {
		panic("core: nested shootdown batch")
	}
	p.shoot.active = true
}

// queueShootRange defers one range-translation invalidation.
func (p *Process) queueShootRange(vbase mem.VirtAddr) {
	p.queueShootRangeOn(p.cpu, vbase)
}

// queueShootRangeOn is queueShootRange charging an explicit CPU (the
// tier migration path runs on the migrating CPU, not the home CPU).
func (p *Process) queueShootRangeOn(cur *sim.CPU, vbase mem.VirtAddr) {
	cur.Advance(p.sys.params.ShootdownQueueOp)
	p.shoot.rbases = append(p.shoot.rbases, vbase)
}

// queueShootUnits defers subtree-unit invalidations.
func (p *Process) queueShootUnits(units []linkUnit) {
	p.queueShootUnitsOn(p.cpu, units)
}

// queueShootUnitsOn is queueShootUnits charging an explicit CPU.
func (p *Process) queueShootUnitsOn(cur *sim.CPU, units []linkUnit) {
	cur.Advance(sim.Time(len(units)) * p.sys.params.ShootdownQueueOp)
	p.shoot.units = append(p.shoot.units, units...)
}

// flushShoot closes the batch and performs the shootdown: the home CPU
// flushes its own caches directly, then one IPI round covers every
// other masked CPU. Each range base is one invalidation per CPU
// regardless of the range's size; each subtree unit flushes per-page
// below the single-page-flush ceiling and with a full TLB flush above
// it (after which further units are moot).
func (p *Process) flushShoot() {
	p.flushShootOn(p.cpu)
}

// flushShootOn is flushShoot initiated from an explicit CPU: cur
// flushes its own caches directly and IPIs every other masked CPU —
// including the home CPU when a tier migration flushes from elsewhere.
func (p *Process) flushShootOn(cur *sim.CPU) {
	sh := &p.shoot
	if !sh.active {
		panic("core: flushShoot without beginShoot")
	}
	sh.active = false
	if len(sh.rbases) == 0 && len(sh.units) == 0 {
		return
	}
	s := p.sys
	flush := func(id int) {
		for _, vb := range sh.rbases {
			s.rtlbs[id].Invalidate(p.pid, vb)
		}
		for _, u := range sh.units {
			t := s.tlbs[id]
			t.InvalidateRange(p.pid, u.va, u.pages)
			if u.pages > tlb.SinglePageFlushCeiling {
				// The full flush emptied the TLB; further units are moot.
				break
			}
		}
	}
	flush(cur.ID())
	s.machine.IPI(cur, p.shootTargets(cur), func(t *sim.CPU) {
		flush(t.ID())
	})
	sim.AddCoalescedInvals(len(sh.rbases) + len(sh.units))
	sh.rbases, sh.units = sh.rbases[:0], sh.units[:0]
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// Mode returns the process's translation mode.
func (p *Process) Mode() TranslationMode { return p.mode }

// Stats exposes per-process counters: "allocs", "maps", "unmaps",
// "touches".
func (p *Process) Stats() *metrics.Set { return p.stats }

// RangeTable exposes the process's range table (nil in SharedPT mode).
func (p *Process) RangeTable() *rangetable.Table { return p.ranges }

// PageTable exposes the process's page table (nil in Ranges mode).
func (p *Process) PageTable() *pagetable.Table { return p.pt }

// Mappings returns the number of live mappings.
func (p *Process) Mappings() int { return len(p.mappings) }

// Segment is one contiguous piece of a mapping: file pages
// [FileOff, FileOff+Pages) at virtual [VA, VA+Pages*4K) backed by
// frames [Frame, Frame+Pages).
type Segment struct {
	VA      mem.VirtAddr
	Frame   mem.Frame
	Pages   uint64
	FileOff uint64
}

// Mapping is one mapped file in one process.
type Mapping struct {
	proc     *Process
	file     *memfs.File
	prot     pagetable.Flags
	segments []Segment
	pages    uint64
	padded   uint64 // SharedPT padding pages beyond the requested size
}

// Base returns the mapping's first virtual address. For single-extent
// files (the common case for file-only memory allocations) the whole
// mapping is contiguous starting here.
func (m *Mapping) Base() mem.VirtAddr { return m.segments[0].VA }

// Pages returns the mapped length in pages (excluding SharedPT
// padding).
func (m *Mapping) Pages() uint64 { return m.pages }

// Bytes returns the mapped length in bytes.
func (m *Mapping) Bytes() uint64 { return m.pages * mem.FrameSize }

// File returns the backing file.
func (m *Mapping) File() *memfs.File { return m.file }

// Prot returns the mapping's (file-grain) protection.
func (m *Mapping) Prot() pagetable.Flags { return m.prot }

// Contiguous reports whether the mapping occupies one virtual range.
func (m *Mapping) Contiguous() bool { return len(m.segments) == 1 }

// Segments returns the mapping's segments.
func (m *Mapping) Segments() []Segment {
	out := make([]Segment, len(m.segments))
	copy(out, m.segments)
	return out
}

// VAForOffset returns the virtual address of a byte offset into the
// file, following segments for fragmented files.
func (m *Mapping) VAForOffset(off uint64) (mem.VirtAddr, error) {
	page := off / mem.FrameSize
	for _, seg := range m.segments {
		if page >= seg.FileOff && page < seg.FileOff+seg.Pages {
			return seg.VA + mem.VirtAddr(off-seg.FileOff*mem.FrameSize), nil
		}
	}
	return 0, fmt.Errorf("core: offset %d outside mapping (%d pages)", off, m.pages)
}

// AllocVolatile allocates pages of volatile memory as an anonymous
// single-extent file and maps it — the file-only-memory replacement
// for mmap(MAP_ANONYMOUS). The operation is O(1) in the allocation
// size: one extent allocation, one epoch erase, one mapping insert.
func (p *Process) AllocVolatile(pages uint64, prot pagetable.Flags) (*Mapping, error) {
	if p.exited {
		return nil, fmt.Errorf("core: process %d has exited", p.pid)
	}
	p.run()
	s := p.sys
	s.clock.Advance(s.params.SyscallOverhead + s.params.MmapFixed)
	alloc := pages
	var padding uint64
	if p.mode == SharedPT {
		// Pad to the subtree granularity: space traded for O(1) time.
		if rem := pages % chunkPages; rem != 0 {
			padding = chunkPages - rem
			alloc = pages + padding
		}
	}
	f, err := s.fs.CreateTemp(fmt.Sprintf("anon-pid%d", p.pid), memfs.CreateOptions{Mode: prot})
	if err != nil {
		return nil, err
	}
	// Allocations beyond the largest buddy block (1 GiB) use one extent
	// per maximal block: cost O(extents) = O(size / 1 GiB), still
	// independent of the page count. SharedPT extents stay chunk-
	// aligned so subtree links remain possible under fragmentation.
	if alloc > maxContiguousPages {
		align := uint64(1)
		if p.mode == SharedPT {
			align = chunkPages
		}
		err = f.EnsureExtents(alloc, align)
	} else {
		err = f.EnsureContiguous(alloc)
	}
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	m, err := p.installMapping(f, prot, pages, padding)
	if err != nil {
		return nil, err
	}
	// The mapping holds the only reference; drop the create handle's.
	// (installMapping took its own reference.)
	if err := f.Close(); err != nil {
		return nil, err
	}
	p.stats.Counter("allocs").Inc()
	s.stats.Counter("allocs").Inc()
	return m, nil
}

// MapFile maps an existing file in full. The cost is O(extents) —
// independent of the file size. In SharedPT mode the file's extents
// must be chunk-aligned (files created by this package are; foreign
// files fall back with an error suggesting Ranges mode).
func (p *Process) MapFile(f *memfs.File, prot pagetable.Flags) (*Mapping, error) {
	if p.exited {
		return nil, fmt.Errorf("core: process %d has exited", p.pid)
	}
	p.run()
	s := p.sys
	s.clock.Advance(s.params.SyscallOverhead + s.params.MmapFixed)
	pages := f.Inode().Pages()
	if pages == 0 {
		return nil, fmt.Errorf("core: mapping empty file")
	}
	if f.Inode().AllocatedPages() < pages {
		return nil, fmt.Errorf("core: file has holes; file-only memory maps fully backed files")
	}
	if prot&^f.Inode().Mode() != 0 {
		return nil, fmt.Errorf("core: requested protection %v exceeds file mode %v", prot, f.Inode().Mode())
	}
	m, err := p.installMapping(f, prot, pages, 0)
	if err != nil {
		return nil, err
	}
	p.stats.Counter("maps").Inc()
	s.stats.Counter("maps").Inc()
	return m, nil
}

// installMapping installs translations for every extent of f.
func (p *Process) installMapping(f *memfs.File, prot pagetable.Flags, pages, padding uint64) (*Mapping, error) {
	m := &Mapping{proc: p, file: f, prot: prot, pages: pages, padded: padding}
	for _, e := range f.Inode().Extents() {
		seg := Segment{
			VA:      VAForPhys(e.Start.Addr()),
			Frame:   e.Start,
			Pages:   e.Count,
			FileOff: e.Logical,
		}
		switch p.mode {
		case Ranges:
			if err := p.ranges.Insert(rangetable.Entry{
				VBase: seg.VA,
				Pages: seg.Pages,
				PBase: seg.Frame,
				Flags: prot,
			}); err != nil {
				return nil, p.teardownPartial(m, err)
			}
		case SharedPT:
			if err := p.linkSegment(seg, prot); err != nil {
				return nil, p.teardownPartial(m, err)
			}
		}
		m.segments = append(m.segments, seg)
	}
	if _, dup := p.mappings[m.Base()]; dup {
		return nil, p.teardownPartial(m, fmt.Errorf("core: file already mapped at %#x", uint64(m.Base())))
	}
	f.Ref()
	p.mappings[m.Base()] = m
	return m, nil
}

func (p *Process) teardownPartial(m *Mapping, cause error) error {
	p.beginShoot()
	defer p.flushShoot()
	for _, seg := range m.segments {
		_ = p.unmapSegment(seg)
	}
	return cause
}

// gigPages is the level-3 link granularity (1 GiB).
const gigPages = chunkPages * 512

// maxContiguousPages is the largest single buddy block (1 GiB).
const maxContiguousPages = gigPages

// linkUnit is one subtree link decision: a 2 MiB chunk (level 2) or a
// whole 1 GiB region (level 3), chosen by alignment. The decomposition
// is a pure function of the segment, so link, unlink and relink agree.
type linkUnit struct {
	va    mem.VirtAddr
	level int
	pages uint64
}

func linkUnits(seg Segment) []linkUnit {
	var units []linkUnit
	c := uint64(0)
	for c < seg.Pages {
		va := seg.VA + mem.VirtAddr(c*mem.FrameSize)
		frame := uint64(seg.Frame) + c
		if seg.Pages-c >= gigPages && va.VPN()%gigPages == 0 && frame%gigPages == 0 {
			units = append(units, linkUnit{va: va, level: 3, pages: gigPages})
			c += gigPages
			continue
		}
		units = append(units, linkUnit{va: va, level: 2, pages: chunkPages})
		c += chunkPages
	}
	return units
}

// linkSegment links a segment from the master table — one entry write
// per 2 MiB chunk, or per whole GiB when alignment allows (the paper's
// "natural granularities of page table structures (e.g., 2MB, 1GB)").
func (p *Process) linkSegment(seg Segment, prot pagetable.Flags) error {
	return p.linkSegmentOn(p.cpu, seg, prot)
}

// linkSegmentOn is linkSegment charging an explicit CPU (tier
// migrations relink segments from the migrating CPU).
func (p *Process) linkSegmentOn(cur *sim.CPU, seg Segment, prot pagetable.Flags) error {
	s := p.sys
	if seg.Pages%chunkPages != 0 || uint64(seg.Frame)%chunkPages != 0 {
		return fmt.Errorf("core: segment [%d,+%d) not chunk-aligned; use Ranges mode for foreign files", seg.Frame, seg.Pages)
	}
	master, err := s.master(cur, prot)
	if err != nil {
		return err
	}
	for _, u := range linkUnits(seg) {
		// A level-3 link shares a level-2 master node, which requires
		// every 2 MiB chunk beneath it to be populated (one-time).
		for c := uint64(0); c < u.pages; c += chunkPages {
			if err := s.ensureChunk(master, cur, u.va+mem.VirtAddr(c*mem.FrameSize)); err != nil {
				return err
			}
		}
		if err := p.pt.LinkSubtree(cur, u.va, master.table, u.va, u.level); err != nil {
			return err
		}
		s.stats.Counter("chunk_links").Inc()
	}
	return nil
}

// unmapSegment removes a segment's translations and queues their
// shootdown on the caller's open batch.
func (p *Process) unmapSegment(seg Segment) error {
	return p.unmapSegmentOn(p.cpu, seg)
}

// unmapSegmentOn is unmapSegment charging an explicit CPU.
func (p *Process) unmapSegmentOn(cur *sim.CPU, seg Segment) error {
	switch p.mode {
	case Ranges:
		if _, err := p.ranges.Remove(seg.VA); err != nil {
			return err
		}
		p.queueShootRangeOn(cur, seg.VA)
	case SharedPT:
		units := linkUnits(seg)
		for _, u := range units {
			if err := p.pt.UnlinkSubtree(cur, u.va, u.level); err != nil {
				return err
			}
		}
		p.queueShootUnitsOn(cur, units)
	}
	return nil
}

// Unmap removes a mapping. Reclamation is by whole file: if this was
// the last reference to an unlinked (anonymous or deleted) file, its
// extents are freed and epoch-erased — no page scanning anywhere.
func (p *Process) Unmap(m *Mapping) error {
	if m.proc != p {
		return fmt.Errorf("core: mapping belongs to process %d", m.proc.pid)
	}
	p.run()
	s := p.sys
	s.clock.Advance(s.params.SyscallOverhead)
	if _, ok := p.mappings[m.Base()]; !ok {
		return fmt.Errorf("core: mapping at %#x not installed", uint64(m.Base()))
	}
	p.beginShoot()
	defer p.flushShoot()
	for _, seg := range m.segments {
		if err := p.unmapSegment(seg); err != nil {
			return err
		}
	}
	delete(p.mappings, m.Base())
	p.stats.Counter("unmaps").Inc()
	s.stats.Counter("unmaps").Inc()
	return m.file.Unref()
}

// Protect rewrites a mapping's protection at file grain: one update
// per extent (Ranges) or a relink against the other master (SharedPT).
func (p *Process) Protect(m *Mapping, prot pagetable.Flags) error {
	p.run()
	s := p.sys
	s.clock.Advance(s.params.SyscallOverhead)
	if _, ok := p.mappings[m.Base()]; !ok {
		return fmt.Errorf("core: mapping at %#x not installed", uint64(m.Base()))
	}
	p.beginShoot()
	defer p.flushShoot()
	switch p.mode {
	case Ranges:
		for _, seg := range m.segments {
			if err := p.ranges.UpdateFlags(seg.VA, prot); err != nil {
				return err
			}
			p.queueShootRange(seg.VA)
		}
	case SharedPT:
		for _, seg := range m.segments {
			if err := p.unmapSegment(seg); err != nil {
				return err
			}
			if err := p.linkSegment(seg, prot); err != nil {
				return err
			}
		}
	}
	m.prot = prot
	return nil
}

// Exit tears down the process: every mapping is unmapped (O(mappings ×
// extents) work total) and anonymous files are reclaimed as whole
// files. Mappings are torn down in ascending address order — Go map
// iteration order must not leak into simulated clocks — and the whole
// teardown's shootdowns coalesce into a single IPI round.
func (p *Process) Exit() error {
	if p.exited {
		return fmt.Errorf("core: process %d already exited", p.pid)
	}
	p.run()
	bases := make([]mem.VirtAddr, 0, len(p.mappings))
	for base := range p.mappings {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	p.beginShoot()
	defer p.flushShoot()
	for _, base := range bases {
		m := p.mappings[base]
		for _, seg := range m.segments {
			if err := p.unmapSegment(seg); err != nil {
				return err
			}
		}
		if err := m.file.Unref(); err != nil {
			return err
		}
	}
	p.mappings = nil
	p.exited = true
	delete(p.sys.live, p.pid)
	if p.pt != nil {
		if err := p.pt.Destroy(); err != nil {
			return err
		}
	}
	return nil
}
