package core

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// TestRandomizedShootdownQuiesce drives random interleavings of
// alloc/map-file/touch/protect/migrate/unmap across 4 CPUs and both
// translation modes, then audits — mid-run and at the end — that no
// CPU's page TLB or range TLB holds an entry for anything no longer
// mapped (the stale-TLB sweep inside System.CheckInvariants). This is
// exactly the property the SharedPT sub-unit stale-entry bug violated
// before shootdownUnits learned to invalidate per page.
func TestRandomizedShootdownQuiesce(t *testing.T) {
	steps := 300
	if testing.Short() {
		steps = 100
	}
	for _, mode := range []TranslationMode{Ranges, SharedPT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			fn := func(seed uint64) bool {
				machine, sys := newStressSystem(t, 4, seed)
				rng := sim.NewRNG(seed)

				type binding struct {
					p *Process
					m *Mapping
				}
				var procs []*Process
				var maps []binding
				nextFile := 0
				for i := 0; i < 3; i++ {
					p, err := sys.NewProcess(mode)
					if err != nil {
						t.Log(err)
						return false
					}
					procs = append(procs, p)
				}
				rwp := pagetable.FlagRead | pagetable.FlagWrite | pagetable.FlagUser
				rop := pagetable.FlagRead | pagetable.FlagUser

				for step := 0; step < steps; step++ {
					p := procs[rng.Intn(len(procs))]
					switch rng.Intn(10) {
					case 0, 1: // volatile anonymous mapping
						if len(maps) >= 24 {
							continue
						}
						m, err := p.AllocVolatile(uint64(1+rng.Intn(8)), rwp)
						if err != nil {
							t.Log(err)
							return false
						}
						maps = append(maps, binding{p, m})
					case 2: // file-backed mapping (contiguous, chunk-aligned for SharedPT)
						if len(maps) >= 24 {
							continue
						}
						f, err := sys.CreateContiguousFile(
							stressPath(nextFile), uint64(1+rng.Intn(8)),
							memfs.CreateOptions{Mode: rwp}, mode == SharedPT)
						nextFile++
						if err != nil {
							t.Log(err)
							return false
						}
						m, err := p.MapFile(f, rwp)
						if err != nil {
							t.Log(err)
							return false
						}
						maps = append(maps, binding{p, m})
					case 3: // unmap: must shoot down every cached translation
						if len(maps) == 0 {
							continue
						}
						i := rng.Intn(len(maps))
						b := maps[i]
						if err := b.p.Unmap(b.m); err != nil {
							t.Log(err)
							return false
						}
						maps = append(maps[:i], maps[i+1:]...)
					case 4: // protection downgrade then restore
						if len(maps) == 0 {
							continue
						}
						b := maps[rng.Intn(len(maps))]
						if err := b.p.Protect(b.m, rop); err != nil {
							t.Log(err)
							return false
						}
						if err := b.p.Protect(b.m, rwp); err != nil {
							t.Log(err)
							return false
						}
					case 5: // migrate, so later shootdowns span more CPUs
						p.RunOn(machine.CPU(rng.Intn(machine.NumCPUs())))
					default: // touch a random page, filling this CPU's TLBs
						if len(maps) == 0 {
							continue
						}
						b := maps[rng.Intn(len(maps))]
						va, err := b.m.VAForOffset(uint64(rng.Intn(int(b.m.Pages()))) * mem.FrameSize)
						if err != nil {
							t.Log(err)
							return false
						}
						if err := b.p.Touch(va, rng.Intn(2) == 0); err != nil {
							t.Log(err)
							return false
						}
					}
					if step%20 == 19 {
						if err := sys.CheckInvariants(); err != nil {
							t.Logf("seed %d step %d: %v", seed, step, err)
							return false
						}
					}
				}
				return sys.CheckInvariants() == nil
			}
			if err := quick.Check(fn, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// newStressSystem builds a System on an n-CPU machine, 1 GiB of NVM
// file store, and a deterministic per-seed CPU layout.
func newStressSystem(t *testing.T, ncpus int, seed uint64) (*sim.Machine, *System) {
	t.Helper()
	params := sim.DefaultParams()
	machine := sim.NewMachine(&params, ncpus, seed)
	memory, err := mem.New(machine.Clock(), &params, mem.Config{DRAMFrames: 16384, NVMFrames: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(machine.Clock(), &params, memory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return machine, sys
}

func stressPath(i int) string {
	return "/stress" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
