package core

import (
	"repro/internal/ckpt"
	"repro/internal/mem"
)

// DirtyUnits maps the system's dirty frames onto checkpoint units:
// file-store frames coalesce into the extents that own them (the
// O(dirty extents) story), while page-table pool frames — 4 KiB
// metadata nodes — are claimed page-granular.
func (s *System) DirtyUnits(frames []mem.Frame) []ckpt.Unit {
	units := s.fs.DirtyUnits(frames)
	var pt []mem.Frame
	for _, f := range frames {
		if s.ptPool != nil && f >= s.ptPool.bud.Base() && f < s.ptPool.bud.Base()+mem.Frame(s.ptPool.bud.Size()) {
			pt = append(pt, f)
		}
	}
	return append(units, ckpt.UnitsBySpan(pt, nil)...)
}
