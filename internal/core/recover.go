package core

import "repro/internal/sim"

// RecoverMetadata models crash recovery in file-only memory: replay
// the file system's extent metadata (O(extents) — package memfs),
// rebuild each live Ranges process's range table from its journaled
// per-extent entries, and relink the master page tables' populated
// chunks with one entry write each (SharedPT mode's subtrees persist
// in NVM; only the links are re-established). Nothing here visits a
// page: the cost is O(extents + chunks), the paper's constant-order
// recovery claim. Returns the total metadata records replayed.
func (s *System) RecoverMetadata() uint64 {
	inodes, extents := s.fs.RecoverMetadata()
	records := inodes + extents
	for _, p := range s.live {
		if p.mode == Ranges && p.ranges != nil {
			records += uint64(p.ranges.ReplayEntries())
		}
	}
	for _, m := range s.masters {
		chunks := uint64(len(m.chunks))
		s.clock.Advance(sim.Time(chunks) * (s.params.ExtentOp + s.params.PTEWrite))
		records += chunks
	}
	return records
}
