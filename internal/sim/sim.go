// Package sim provides the deterministic simulation substrate shared by
// every subsystem in the repository: a virtual nanosecond clock, the
// calibrated cost-parameter table, and a reproducible random number
// generator.
//
// All memory-management experiments in this repository report *virtual*
// time. Each simulated operation (a page-table entry write, a TLB probe,
// a buddy-allocator split, ...) advances a Clock by a documented constant
// from Params. This makes every benchmark deterministic and lets tests
// assert complexity properties exactly: an O(1) operation advances the
// clock by the same amount regardless of operand size, while an O(n)
// operation advances it linearly.
package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// Time is a point in (or duration of) virtual time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String formats a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Microseconds returns t expressed in fractional microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Clock is a virtual clock. The zero value is a free-standing clock at
// time zero, ready to use — the pre-SMP single-CPU model, still used by
// subsystem unit tests. Clocks owned by a Machine come in two flavours:
// each CPU has its own clock, and the machine's kernel clock forwards
// every operation to the clock of the CPU currently executing (see
// Machine.SetCurrent), so shared subsystems written against a single
// *Clock charge whichever CPU is driving them. Clock is not safe for
// concurrent use; the simulation is single-threaded by design.
type Clock struct {
	now  Time
	mach *Machine // non-nil for machine-owned clocks
	id   int      // owning CPU id for machine-owned clocks
	fwd  bool     // kernel clock: operate on the current CPU's clock
}

// self resolves forwarding: the kernel clock of a Machine delegates to
// the clock of the CPU currently executing. During a parallel phase's
// free-running window there is no current CPU, so a forwarding charge
// would silently land on an arbitrary clock; the guard turns that
// nondeterminism into a loud failure (charge the executing CPU's own
// clock, or wrap the operation in Machine.Ordered).
func (c *Clock) self() *Clock {
	if c.fwd {
		c.mach.mustNotFreePhase("forwarding kernel clock")
		return c.mach.cur.clock
	}
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.self().now }

// Advance moves the clock forward by d. Negative advances are a
// programming error and panic.
func (c *Clock) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %d", d))
	}
	s := c.self()
	s.now += d
	s.publish()
}

// AdvanceTo moves the clock forward to time t if t is in the future;
// earlier times are a no-op. This is the Lamport-style merge used when
// CPUs synchronize (IPI delivery, ack waits).
func (c *Clock) AdvanceTo(t Time) {
	s := c.self()
	if t > s.now {
		s.now = t
		s.publish()
	}
}

// publish exposes the clock value to the parallel-phase gate. During a
// phase every CPU's current time is mirrored into an atomic slot, so
// the sync-domain gate can lower-bound the next sync key of a CPU that
// is still free-running without stopping it (parallel.go). The store
// only happens inside a phase, keeping the serial hot path at one
// atomic load.
func (c *Clock) publish() {
	if c.mach != nil && c.mach.phaseFlag.Load() {
		c.mach.pubs[c.id].Store(int64(c.now))
	}
}

// Since returns the virtual time elapsed since start. A start later
// than now is a programming error (a clock can never run backwards)
// and panics, mirroring the Advance guard.
func (c *Clock) Since(start Time) Time {
	now := c.self().now
	if start > now {
		panic(fmt.Sprintf("sim: Since start %d is after now %d", start, now))
	}
	return now - start
}

// Machine returns the machine that owns this clock, or nil for a
// free-standing clock that has not been adopted by MachineOf yet.
// Callers that measure elapsed time across operations which may switch
// the executing CPU should use Machine().Time() rather than Now().
func (c *Clock) Machine() *Machine { return c.mach }

// Params is the calibrated cost table. Every simulated micro-operation
// charges exactly one (or a small documented combination) of these
// constants. The defaults are calibrated against the anchors in the
// paper (see DESIGN.md §5): an un-populated mmap costs ≈8µs, demand
// faulting is ≈50× more expensive per page than touching a
// pre-populated mapping, and PMFS file allocation tracks anonymous
// memory within a few percent.
//
// Experiments that assert complexity *shape* (constant vs linear) hold
// for any strictly positive values.
type Params struct {
	// SyscallOverhead is the fixed user/kernel transition cost charged
	// once per system call (mmap, munmap, read, open, ...).
	SyscallOverhead Time

	// FaultOverhead is the trap + handler dispatch + return cost charged
	// for every page fault, on top of the work the handler performs.
	// This is the dominant term that makes demand paging expensive.
	FaultOverhead Time

	// MmapFixed is the fixed per-mapping-call cost beyond the raw
	// user/kernel transition: fd and permission checks, locking,
	// accounting. Charged by every map operation on either backend;
	// calibrated so an un-populated tmpfs mmap lands near the paper's
	// ≈8 µs anchor.
	MmapFixed Time

	// PTEWrite is the cost of writing one page-table entry.
	PTEWrite Time

	// PTNodeAlloc is the cost of allocating and initializing one
	// page-table node (one 4 KiB frame holding 512 entries), beyond the
	// underlying frame allocation.
	PTNodeAlloc Time

	// WalkLevelRef is the memory-reference cost per page-table level
	// during a hardware walk. Upper levels usually hit the paging
	// structure caches, so this is far below a DRAM reference.
	WalkLevelRef Time

	// MemRef is the cost of one cache-missing memory data reference.
	MemRef Time

	// NVMReadPenalty and NVMWritePenalty are added to MemRef when the
	// reference targets a frame in an NVM region.
	NVMReadPenalty  Time
	NVMWritePenalty Time

	// TLBHit is the lookup cost on a TLB hit; TLBMiss is the additional
	// probe cost on a miss (before the walk begins).
	TLBHit  Time
	TLBMiss Time

	// TLBShootdown is retained for cost-table compatibility: it was the
	// flat stand-in charge for notifying other cores before shootdowns
	// were modeled as real IPIs (IPISend/IPIReceive below). Nothing
	// charges it anymore. TLBFlushEntry is the local single-entry
	// invalidation cost (one INVLPG).
	TLBShootdown  Time
	TLBFlushEntry Time

	// TLBFullFlush is the flat cost of discarding the whole TLB (a CR3
	// write). It is deliberately not per-entry: hardware drops every
	// entry in one operation, the cost shows up later as refill misses.
	TLBFullFlush Time

	// IPISend is the initiating CPU's cost per shootdown target: APIC
	// register writes plus the wait contribution folded into the
	// Lamport merge with the target clocks. IPIReceive is each target's
	// interrupt entry/exit cost, paid before the requested invalidation
	// work. Together they replace the old flat TLBShootdown /
	// IPIBroadcast stand-ins; IPISend+IPIReceive+TLBFlushEntry ≈ the
	// old TLBShootdown value, so single-target costs stay calibrated.
	IPISend    Time
	IPIReceive Time

	// ShootdownQueueOp is the bookkeeping cost of adding one page to a
	// CPU's deferred-invalidation batch (the mmu_gather analogue of
	// Linux's batched TLB flush): recording the VA range and growing
	// the pending set. A whole unmap burst then pays one range flush
	// and one IPI round instead of a per-page shootdown.
	ShootdownQueueOp Time

	// RangeTLBHit is the lookup cost in the range TLB; RangeTableOp is
	// the cost of one range-table insert/remove/lookup step.
	RangeTLBHit  Time
	RangeTableOp Time

	// BuddyOp is the cost of one buddy-allocator list operation
	// (split, coalesce, push, pop).
	BuddyOp Time

	// SlabOp is the cost of one slab-cache alloc/free fast path.
	SlabOp Time

	// ZeroPage is the cost of zeroing one 4 KiB frame eagerly.
	ZeroPage Time

	// ZeroEpoch is the cost of an O(1) epoch-based bulk erase.
	ZeroEpoch Time

	// ExtentOp is the cost of one extent-tree operation (lookup,
	// insert, split) in the file system.
	ExtentOp Time

	// BitmapOp is the cost of one block-bitmap scan step.
	BitmapOp Time

	// InodeOp is the cost of one inode create/lookup/update.
	InodeOp Time

	// DirOp is the cost of one directory entry operation.
	DirOp Time

	// PageCacheLookup is the cost of one radix lookup in a per-file
	// page cache (tmpfs page lookup during populate or fault).
	PageCacheLookup Time

	// PageMetaOp is the cost of updating one struct-page analogue
	// (flags, LRU links, refcount) in the baseline VM.
	PageMetaOp Time

	// VMAOp is the cost of one VMA tree operation (find, insert,
	// merge check, remove).
	VMAOp Time

	// SwapPageIO is the cost of writing or reading one page to the
	// swap device (a major fault's dominant term).
	SwapPageIO Time

	// JournalAppend is the cost of persisting one metadata journal
	// record to NVM: an NVM-class store (MemRef + NVMWritePenalty)
	// plus the write-ahead ordering overhead (fence/flush). Charged
	// once per record by the persistence layer's modelled journal.
	JournalAppend Time

	// ReadPerByte is the marginal per-byte cost of a read()-style
	// kernel copy (charged in addition to SyscallOverhead).
	ReadPerByte Time

	// TierScanFrame is the cost of one clock-hand hotness-scanner
	// visit: read and age one frame's access bit (a page-struct
	// read/modify/write, same order as PageMetaOp).
	TierScanFrame Time

	// TierPolicyOp is the cost of one tier-migration policy decision:
	// consult occupancy, pick a candidate, enqueue the move. Charged
	// per decision, separate from the copy/remap costs the migration
	// itself accrues through the normal machinery.
	TierPolicyOp Time

	// UQueueOp is the user-side cost of posting or reaping one request
	// on the user↔kernel shared-memory grant queue (a few cache-line
	// writes and a doorbell read — no privilege transition). Every
	// usermode fault, grant refill, revocation, and pin is two of
	// these: one submit, one completion reap.
	UQueueOp Time

	// GrantInstall is the kernel-side cost of installing or revoking
	// one physical extent in a process's grant table (capability-table
	// update plus accounting).
	GrantInstall Time

	// UserAllocOp is the cost of one user-level allocator step over
	// granted extents: a free-run list operation or the software bounds
	// check a no-virtual-memory process performs instead of a hardware
	// walk.
	UserAllocOp Time

	// IPIBroadcast is retained for cost-table compatibility: it was the
	// flat broadcast-shootdown stand-in used before per-CPU clocks.
	// Nothing charges it anymore; broadcasts now cost IPISend per
	// target on the sender plus IPIReceive per target.
	IPIBroadcast Time
}

// DefaultParams returns the calibrated default cost table.
func DefaultParams() Params {
	return Params{
		SyscallOverhead:  450,
		FaultOverhead:    2200,
		MmapFixed:        7000,
		PTEWrite:         15,
		PTNodeAlloc:      120,
		WalkLevelRef:     10,
		MemRef:           5,
		NVMReadPenalty:   50,
		NVMWritePenalty:  150,
		TLBHit:           1,
		TLBMiss:          4,
		TLBShootdown:     1500,
		TLBFlushEntry:    40,
		TLBFullFlush:     500,
		IPISend:          800,
		IPIReceive:       600,
		ShootdownQueueOp: 5,
		RangeTLBHit:      2,
		RangeTableOp:     60,
		BuddyOp:          40,
		SlabOp:           25,
		ZeroPage:         250,
		ZeroEpoch:        90,
		ExtentOp:         150,
		BitmapOp:         20,
		InodeOp:          350,
		DirOp:            120,
		PageCacheLookup:  80,
		PageMetaOp:       12,
		VMAOp:            180,
		SwapPageIO:       25000,
		JournalAppend:    200,
		ReadPerByte:      0, // bulk copy cost charged via ReadPerPage below
		TierScanFrame:    12,
		TierPolicyOp:     20,
		UQueueOp:         30,
		GrantInstall:     90,
		UserAllocOp:      15,
		IPIBroadcast:     2000,
	}
}

// ReadPerPage is the kernel bulk-copy cost for one 4 KiB page moved by
// read()/write() style calls. Kept as a method so the copy cost scales
// with MemRef if a caller tunes the table.
func (p *Params) ReadPerPage() Time { return 35 * p.MemRef }

// Validate reports an error if any cost is non-positive where the
// simulator requires strictly positive values.
func (p *Params) Validate() error {
	checks := []struct {
		name string
		v    Time
	}{
		{"SyscallOverhead", p.SyscallOverhead},
		{"FaultOverhead", p.FaultOverhead},
		{"MmapFixed", p.MmapFixed},
		{"PTEWrite", p.PTEWrite},
		{"PTNodeAlloc", p.PTNodeAlloc},
		{"WalkLevelRef", p.WalkLevelRef},
		{"MemRef", p.MemRef},
		{"TLBHit", p.TLBHit},
		{"TLBMiss", p.TLBMiss},
		{"BuddyOp", p.BuddyOp},
		{"SlabOp", p.SlabOp},
		{"ZeroPage", p.ZeroPage},
		{"ZeroEpoch", p.ZeroEpoch},
		{"ExtentOp", p.ExtentOp},
		{"InodeOp", p.InodeOp},
		{"VMAOp", p.VMAOp},
		{"RangeTableOp", p.RangeTableOp},
		{"TLBFullFlush", p.TLBFullFlush},
		{"IPISend", p.IPISend},
		{"IPIReceive", p.IPIReceive},
		{"ShootdownQueueOp", p.ShootdownQueueOp},
		{"JournalAppend", p.JournalAppend},
		{"TierScanFrame", p.TierScanFrame},
		{"TierPolicyOp", p.TierPolicyOp},
		{"UQueueOp", p.UQueueOp},
		{"GrantInstall", p.GrantInstall},
		{"UserAllocOp", p.UserAllocOp},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("sim: parameter %s must be positive, got %d", c.name, c.v)
		}
	}
	return nil
}

// RNG is a deterministic xorshift64* pseudo-random number generator.
// It is reproducible across runs and platforms, which keeps every
// experiment's workload identical between executions.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped to a
// fixed non-zero constant, as xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n called with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// MarshalParams encodes a cost table as indented JSON — the format
// accepted by LoadParams and by cmd/o1bench's -params flag.
func MarshalParams(p *Params) ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// LoadParams reads a JSON cost table (as produced by MarshalParams).
// Missing fields keep their default values; the result is validated.
func LoadParams(r io.Reader) (Params, error) {
	p := DefaultParams()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Params{}, fmt.Errorf("sim: loading params: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}
