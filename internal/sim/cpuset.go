package sim

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUSet is a set of CPU ids, 0..63, as a bitmask. The parallel-phase
// scheduler uses it for sync domains (the CPUs a sync point can
// observe or mutate) and sync groups (the partition of CPUs that are
// allowed to interact at all). Machines with more than 64 CPUs fall
// back to the legacy global-quiescence protocol, which never builds a
// CPUSet.
type CPUSet uint64

// maxSetCPUs is the largest machine size the sync-domain protocol
// supports; larger machines run the legacy protocol.
const maxSetCPUs = 64

// Add inserts CPU id into the set.
func (s *CPUSet) Add(id int) {
	if id < 0 || id >= maxSetCPUs {
		panic(fmt.Sprintf("sim: CPU id %d outside CPUSet range [0,%d)", id, maxSetCPUs))
	}
	*s |= 1 << uint(id)
}

// Has reports whether CPU id is in the set.
func (s CPUSet) Has(id int) bool {
	if id < 0 || id >= maxSetCPUs {
		return false
	}
	return s&(1<<uint(id)) != 0
}

// Count returns the number of CPUs in the set.
func (s CPUSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Intersects reports whether the two sets share any CPU.
func (s CPUSet) Intersects(o CPUSet) bool { return s&o != 0 }

// SubsetOf reports whether every CPU in s is also in o.
func (s CPUSet) SubsetOf(o CPUSet) bool { return s&^o == 0 }

// String formats the set as {0,1,5} for error messages and tests.
func (s CPUSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for id := 0; id < maxSetCPUs; id++ {
		if !s.Has(id) {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}

// fullCPUSet returns the set of all n CPUs (saturating at the CPUSet
// capacity; callers guard n > maxSetCPUs by forcing the legacy
// protocol).
func fullCPUSet(n int) CPUSet {
	if n >= maxSetCPUs {
		return ^CPUSet(0)
	}
	return CPUSet(1)<<uint(n) - 1
}
