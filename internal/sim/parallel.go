package sim

import (
	"fmt"
	"sync"
)

// This file implements host-parallel execution of one machine's CPUs
// under a conservative discrete-event synchronization protocol (see
// DESIGN.md §11).
//
// Machine.RunParallel runs one task per CPU. Each task free-runs on its
// own goroutine, charging only its own CPU's clock and touching only
// per-CPU simulated state, until it would interact cross-CPU (an IPI
// with live targets, or an explicit Ordered section). There it blocks
// at a *sync point* keyed by (virtual time, CPU id). Sync points are
// granted one at a time, and only at global quiescence — every CPU
// either blocked at a sync point or finished — always to the minimum
// key. The granted CPU executes its cross-CPU effect exclusively (all
// other CPUs are provably parked), then resumes free-running.
//
// Because grants happen only when no CPU is running and are chosen by
// a pure function of simulated state, the order of cross-CPU events is
// a function of virtual time and CPU id — never of host scheduling.
// Serial mode is the *same* protocol with the run-slot limit set to 1
// instead of NumCPUs, so serial and host-parallel execution are
// byte-identical by construction; the difference is wall-clock only.

// phase is the scheduler state for one RunParallel invocation.
type phase struct {
	m    *Machine
	mu   sync.Mutex
	cond *sync.Cond

	slots   int // max CPUs free-running at once (1 = serial mode)
	running int // CPUs currently free-running
	ready   int // CPUs that have not started their task yet
	done    int // CPUs whose task has returned

	waiting map[int]*syncWaiter // blocked at a sync point, by CPU id

	grantPending bool // a waiter was granted but has not resumed yet
	exclusive    bool // a granted waiter is executing its section

	errs   []error // per-CPU task results
	panics []any   // per-CPU recovered panic values
}

// syncWaiter is one CPU blocked at a sync point.
type syncWaiter struct {
	at      Time // the waiter's virtual time when it blocked
	granted bool
}

// SetHostParallel selects the run-slot limit for subsequent RunParallel
// calls: true runs every CPU's context on its own goroutine, false
// (the default) runs the same protocol one CPU at a time. Simulated
// results are identical either way.
func (m *Machine) SetHostParallel(on bool) { m.hostpar = on }

// HostParallel reports whether RunParallel uses all host cores.
func (m *Machine) HostParallel() bool { return m.hostpar }

// FreeRunning reports whether a parallel phase is currently in its
// free-running window: multiple CPU contexts may be executing
// concurrently, and there is no single current CPU. Subsystem entry
// points use it to skip legacy current-CPU bookkeeping that has no
// meaning in that window.
func (m *Machine) FreeRunning() bool { return m.inFreePhase() }

// inFreePhase reports whether multiple CPU contexts may be running
// concurrently right now: a parallel phase is active on a multi-CPU
// machine and no CPU holds the exclusive grant. State shared between
// CPUs (the current-CPU pointer, the forwarding kernel clock) must not
// be used in this window; the accessors panic if it is.
func (m *Machine) inFreePhase() bool {
	return m.phaseFlag.Load() && len(m.cpus) > 1 && !m.exclFlag.Load()
}

// RunParallel runs task once per CPU, in parallel virtual time, under
// the conservative synchronization protocol above. It returns the
// lowest-ID CPU's error if any task failed. Panics in a task are
// re-raised in the caller. The current CPU is restored afterwards.
// Nested RunParallel calls panic.
func (m *Machine) RunParallel(task func(*CPU) error) error {
	if m.phase != nil {
		panic("sim: nested RunParallel")
	}
	n := len(m.cpus)
	p := &phase{
		m:       m,
		slots:   1,
		ready:   n,
		waiting: make(map[int]*syncWaiter, n),
		errs:    make([]error, n),
		panics:  make([]any, n),
	}
	p.cond = sync.NewCond(&p.mu)
	if m.hostpar {
		p.slots = n
	}
	prev := m.cur
	m.phase = p
	m.phaseFlag.Store(true)

	var wg sync.WaitGroup
	wg.Add(n)
	for _, c := range m.cpus {
		c := c
		go func() {
			defer wg.Done()
			p.runCPU(c, task)
		}()
	}
	wg.Wait()

	m.phaseFlag.Store(false)
	m.phase = nil
	m.cur = prev

	for _, r := range p.panics {
		if r != nil {
			panic(r)
		}
	}
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCPU is one CPU's goroutine: acquire a run slot, execute the task,
// and retire. Panics are captured and re-raised by RunParallel so that
// the phase always drains cleanly.
func (p *phase) runCPU(c *CPU, task func(*CPU) error) {
	p.mu.Lock()
	for p.running >= p.slots {
		p.cond.Wait()
	}
	p.ready--
	p.running++
	p.mu.Unlock()

	defer func() {
		r := recover()
		p.mu.Lock()
		if r != nil {
			p.panics[c.id] = r
		}
		p.running--
		p.done++
		p.checkGateLocked()
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	p.errs[c.id] = task(c)
}

// syncPoint blocks CPU c at key (at, c.id) until every other CPU is
// blocked or done and this key is the minimum, then runs fn exclusively
// with c as the current CPU, and finally resumes free-running. It must
// be called from c's own task goroutine.
func (p *phase) syncPoint(c *CPU, at Time, fn func()) {
	p.mu.Lock()
	if p.exclusive {
		p.mu.Unlock()
		panic("sim: nested sync point inside an ordered section")
	}
	p.running--
	w := &syncWaiter{at: at}
	p.waiting[c.id] = w
	p.checkGateLocked()
	p.cond.Broadcast()
	for !w.granted {
		p.cond.Wait()
	}
	p.grantPending = false
	p.exclusive = true
	p.m.exclFlag.Store(true)
	p.m.cur = c
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		p.exclusive = false
		p.m.exclFlag.Store(false)
		delete(p.waiting, c.id)
		for p.running >= p.slots {
			p.cond.Wait()
		}
		p.running++
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	fn()
}

// checkGateLocked grants the minimum-(time, id) waiter iff the phase is
// globally quiescent: no CPU free-running, none yet to start, no grant
// in flight. Called with p.mu held after every transition that could
// make running reach zero.
func (p *phase) checkGateLocked() {
	if p.running > 0 || p.ready > 0 || p.grantPending || p.exclusive || len(p.waiting) == 0 {
		return
	}
	minID := -1
	var minAt Time
	for id, w := range p.waiting {
		if minID == -1 || w.at < minAt || (w.at == minAt && id < minID) {
			minID, minAt = id, w.at
		}
	}
	p.grantPending = true
	p.waiting[minID].granted = true
}

// Ordered executes fn as CPU c with cross-CPU effects permitted: the
// machine's current CPU is c, the forwarding kernel clock charges c,
// and IPIs deliver inline. Outside a parallel phase this is simply
// SetCurrent(c); fn(). Inside one, fn becomes a sync point keyed by
// (c.Now(), c.ID()) and runs exclusively, so legacy code that assumes
// serial interleaving stays correct under RunParallel. In-phase calls
// must come from c's own task goroutine.
func (m *Machine) Ordered(c *CPU, fn func()) {
	if c.mach != m {
		panic("sim: Ordered with a CPU from another machine")
	}
	if m.inFreePhase() {
		m.phase.syncPoint(c, c.Now(), fn)
		return
	}
	m.cur = c
	fn()
}

// IPIDelivery is one IPI delivery record: sender, receiver, and the
// send and receive completion times. Tests use the log to prove that
// host-parallel delivery order equals the serial Lamport order.
type IPIDelivery struct {
	From, To     int
	Send, Arrive Time
}

// EnableIPILog starts recording every IPI delivery. Test-only: the log
// grows without bound.
func (m *Machine) EnableIPILog() { m.ipiLog = make([]IPIDelivery, 0, 64) }

// IPILog returns the recorded deliveries.
func (m *Machine) IPILog() []IPIDelivery { return m.ipiLog }

// ipiRecord appends to the delivery log if enabled. Only called from
// deliverIPI, which runs serially (out of phase) or under the
// exclusive grant (in phase), so no locking is needed.
func (m *Machine) ipiRecord(r IPIDelivery) {
	if m.ipiLog != nil {
		m.ipiLog = append(m.ipiLog, r)
	}
}

// mustNotFreePhase panics if shared machine state is touched while
// CPUs free-run concurrently.
func (m *Machine) mustNotFreePhase(what string) {
	if m.inFreePhase() {
		panic(fmt.Sprintf("sim: %s during a parallel phase outside an ordered section", what))
	}
}
