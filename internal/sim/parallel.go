package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file implements host-parallel execution of one machine's CPUs
// under a conservative discrete-event synchronization protocol with
// sharded sync domains (see DESIGN.md §11).
//
// Machine.RunParallel runs one task per CPU. Each task free-runs on its
// own goroutine, charging only its own CPU's clock and touching only
// per-CPU simulated state, until it would interact cross-CPU (an IPI
// with live targets, or an explicit Ordered/OrderedDomain section).
// There it blocks at a *sync point* keyed by (virtual time, CPU id)
// and carrying a *sync domain*: the set of CPUs whose simulated state
// the section reads or mutates (the IPI target set plus the sender;
// the declared peers of an ordered section).
//
// A waiter w is granted when four conditions hold:
//
//  1. every other CPU in w's domain is parked at a sync point or done
//     (the section will mutate their clocks and TLBs; a running domain
//     CPU would race),
//  2. every other CPU in w's *sync group* is provably past w's key:
//     done CPUs trivially, parked CPUs because their own key is
//     larger, and free-running CPUs because their published clock
//     already exceeds w's key — a CPU's next sync key can never be
//     below its current clock, so it can no longer produce a section
//     that should have run before w,
//  3. no currently-executing section's domain intersects w's domain
//     (an earlier-keyed overlapping section must finish first), and
//  4. a run slot is free (granted sections occupy run slots, so
//     serial mode — one slot — still executes one context at a time).
//
// Condition 2 means sections over intersecting domains are granted in
// global (time, id) order, and sections over disjoint domains commute
// (they touch disjoint per-CPU state, and all cross-CPU clock merges
// stay inside the domain), so the final simulated state is a pure
// function of virtual time — never of host scheduling. Serial mode is
// the *same* protocol with the run-slot limit set to 1 instead of
// NumCPUs, so serial and host-parallel execution are byte-identical
// by construction; the difference is wall-clock only.
//
// Sync groups (Machine.SetSyncGroups) strengthen this: they declare a
// partition of CPUs such that no section's domain crosses a group
// boundary (enforced by panic). Condition 2 then only inspects the
// waiter's own group, so disjoint tenants pinned to disjoint groups
// never barrier against each other at all.
//
// The legacy PR-6 protocol — every section global, granted one at a
// time at full quiescence — is kept behind SetSyncLegacy (and is
// forced by EnableIPILog, whose unsynchronized log relies on serial
// delivery, and on >64-CPU machines, which exceed the CPUSet width).
// Both protocols produce identical simulated state: they order
// intersecting sections by the same key and differ only in how much
// provably-commuting overlap they allow.

// cpuState is one CPU's scheduler state during a parallel phase.
type cpuState uint8

const (
	cpuReady   cpuState = iota // task goroutine not started yet
	cpuRunning                 // free-running (holds a run slot)
	cpuParked                  // blocked at a sync point
	cpuGranted                 // executing its section (holds a run slot)
	cpuDone                    // task returned
)

// phase is the scheduler state for one RunParallel invocation.
type phase struct {
	m    *Machine
	mu   sync.Mutex
	cond *sync.Cond

	legacy bool // PR-6 global-quiescence protocol
	slots  int  // max CPUs executing at once (1 = serial mode)
	active int  // CPUs holding a run slot (running or granted)
	readyN int  // CPUs that have not started their task yet

	state   []cpuState    // by CPU id
	waiting []*syncWaiter // by CPU id; non-nil while parked or granted
	order   []*syncWaiter // gate scratch: ungranted waiters, key-sorted

	errs   []error // per-CPU task results
	panics []any   // per-CPU recovered panic values
}

// syncWaiter is one CPU blocked at (or executing) a sync point.
type syncWaiter struct {
	at      Time   // the waiter's virtual time when it blocked
	cpu     int    // owning CPU id (key tiebreak)
	dom     CPUSet // CPUs the section observes or mutates
	granted bool
	// wake carries the grant to the parked goroutine. A dedicated
	// buffered channel per waiter means a grant readies exactly one
	// goroutine; broadcasting on a shared cond would wake every parked
	// CPU on every transition — a measurable futex storm once sharded
	// domains let many sections overlap.
	wake chan struct{}
}

// SetHostParallel selects the run-slot limit for subsequent RunParallel
// calls: true runs every CPU's context on its own goroutine, false
// (the default) runs the same protocol one CPU at a time. Simulated
// results are identical either way.
func (m *Machine) SetHostParallel(on bool) { m.hostpar = on }

// HostParallel reports whether RunParallel uses all host cores.
func (m *Machine) HostParallel() bool { return m.hostpar }

// SetSyncLegacy selects the legacy global-quiescence protocol for
// subsequent RunParallel calls: every sync point is treated as a
// machine-wide section and granted one at a time with every CPU
// stopped, exactly as before sync domains existed. Simulated state is
// identical to the sharded protocol; only host-side overlap (and thus
// wall-clock) differs. Benchmarks use it for before/after comparisons
// (o1bench -syncmode global).
func (m *Machine) SetSyncLegacy(on bool) { m.syncLegacy = on }

// SyncLegacy reports whether the legacy protocol is selected.
func (m *Machine) SyncLegacy() bool { return m.syncLegacy }

// SetSyncGroups declares a partition of the machine's CPUs into
// disjoint sync groups: a promise that no sync domain (IPI sender plus
// targets, ordered-section peers) will ever span two groups, checked
// at every sync point. The gate then confines condition 2 to the
// waiter's own group, so CPUs in different groups never wait for each
// other. CPUs not named in any group form singleton groups. Passing
// nil restores the default single machine-wide group. Must not be
// called during a parallel phase.
func (m *Machine) SetSyncGroups(groups [][]int) {
	if m.phase != nil {
		panic("sim: SetSyncGroups during a parallel phase")
	}
	if groups == nil {
		m.groupOf = nil
		return
	}
	n := len(m.cpus)
	if n > maxSetCPUs {
		panic(fmt.Sprintf("sim: sync groups unsupported beyond %d CPUs", maxSetCPUs))
	}
	groupOf := make([]CPUSet, n)
	var seen CPUSet
	for _, g := range groups {
		var set CPUSet
		for _, id := range g {
			if id < 0 || id >= n {
				panic(fmt.Sprintf("sim: sync group CPU %d out of range [0,%d)", id, n))
			}
			if seen.Has(id) {
				panic(fmt.Sprintf("sim: CPU %d named in two sync groups", id))
			}
			seen.Add(id)
			set.Add(id)
		}
		for _, id := range g {
			groupOf[id] = set
		}
	}
	for id := 0; id < n; id++ {
		if groupOf[id] == 0 {
			groupOf[id].Add(id)
		}
	}
	m.groupOf = groupOf
}

// groupMask returns the sync group containing CPU id (the full machine
// when no partition is declared).
func (m *Machine) groupMask(id int) CPUSet {
	if m.groupOf == nil {
		return fullCPUSet(len(m.cpus))
	}
	return m.groupOf[id]
}

// FreeRunning reports whether a parallel phase is currently in its
// free-running window: multiple CPU contexts may be executing
// concurrently, and there is no single current CPU. Subsystem entry
// points use it to skip legacy current-CPU bookkeeping that has no
// meaning in that window.
func (m *Machine) FreeRunning() bool { return m.inFreePhase() }

// inFreePhase reports whether multiple CPU contexts may be running
// concurrently right now: a parallel phase is active on a multi-CPU
// machine and no CPU holds a machine-wide exclusive grant. State
// shared between CPUs (the current-CPU pointer, the forwarding kernel
// clock) must not be used in this window; the accessors panic if it
// is. Note that narrow-domain sections execute inside this window —
// they may only touch the per-CPU state of their declared domain.
func (m *Machine) inFreePhase() bool {
	return m.phaseFlag.Load() && len(m.cpus) > 1 && !m.exclFlag.Load()
}

// RunParallel runs task once per CPU, in parallel virtual time, under
// the conservative synchronization protocol above. It returns the
// lowest-ID CPU's error if any task failed. Panics in a task are
// re-raised in the caller. The current CPU is restored afterwards.
// Nested RunParallel calls panic.
func (m *Machine) RunParallel(task func(*CPU) error) error {
	if m.phase != nil {
		panic("sim: nested RunParallel")
	}
	n := len(m.cpus)
	p := &phase{
		m:       m,
		legacy:  m.syncLegacy || n > maxSetCPUs,
		slots:   1,
		readyN:  n,
		state:   make([]cpuState, n),
		waiting: make([]*syncWaiter, n),
		errs:    make([]error, n),
		panics:  make([]any, n),
	}
	p.cond = sync.NewCond(&p.mu)
	if m.hostpar {
		p.slots = n
	}
	// Seed the published clocks so the gate's lower bounds are valid
	// from the first grant.
	for i, c := range m.cpus {
		m.pubs[i].Store(int64(c.clock.now))
	}
	prev := m.cur
	m.phase = p
	m.phaseFlag.Store(true)

	var wg sync.WaitGroup
	wg.Add(n)
	for _, c := range m.cpus {
		c := c
		// The pprof label makes per-simulated-CPU goroutines separable
		// in CPU profiles and runtime traces (o1bench -trace).
		labels := pprof.Labels("sim_cpu", strconv.Itoa(c.id))
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				p.runCPU(c, task)
			})
		}()
	}
	wg.Wait()

	m.phaseFlag.Store(false)
	m.phase = nil
	m.cur = prev

	for _, r := range p.panics {
		if r != nil {
			panic(r)
		}
	}
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCPU is one CPU's goroutine: acquire a run slot, execute the task,
// and retire. Panics are captured and re-raised by RunParallel so that
// the phase always drains cleanly.
func (p *phase) runCPU(c *CPU, task func(*CPU) error) {
	p.mu.Lock()
	for p.active >= p.slots {
		p.cond.Wait()
	}
	p.readyN--
	p.active++
	p.state[c.id] = cpuRunning
	p.mu.Unlock()

	defer func() {
		r := recover()
		p.mu.Lock()
		if r != nil {
			p.panics[c.id] = r
		}
		p.active--
		p.state[c.id] = cpuDone
		p.checkGateLocked()
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	p.errs[c.id] = task(c)
}

// syncPoint blocks CPU c at key (at, c.id) with sync domain dom until
// the gate grants it, then runs fn and resumes free-running. A
// machine-wide domain runs exclusively with c as the current CPU; a
// narrower domain runs concurrently with CPUs outside it and must
// confine itself to the domain's per-CPU state. Must be called from
// c's own task goroutine.
func (p *phase) syncPoint(c *CPU, at Time, dom CPUSet, fn func()) {
	full := fullCPUSet(len(p.m.cpus))
	p.mu.Lock()
	if p.state[c.id] == cpuGranted {
		p.mu.Unlock()
		panic("sim: nested sync point inside an ordered section")
	}
	if p.legacy {
		dom = full
	} else if grp := p.m.groupMask(c.id); !dom.SubsetOf(grp) {
		p.mu.Unlock()
		panic(fmt.Sprintf("sim: sync domain %s of CPU %d crosses its sync group %s", dom, c.id, grp))
	}
	p.active--
	p.state[c.id] = cpuParked
	w := &syncWaiter{at: at, cpu: c.id, dom: dom, wake: make(chan struct{}, 1)}
	p.waiting[c.id] = w
	p.checkGateLocked()
	p.cond.Broadcast() // parking freed a run slot: a ready CPU may start
	p.mu.Unlock()
	t0 := time.Now()
	<-w.wake
	waited := time.Since(t0)
	// The gate already moved c to cpuGranted and charged it a run slot.
	p.mu.Lock()
	global := dom == full
	if global {
		p.m.exclFlag.Store(true)
		p.m.cur = c
	}
	p.mu.Unlock()
	telAddGrant(dom.Count(), global, int64(waited))

	defer func() {
		p.mu.Lock()
		if global {
			p.m.exclFlag.Store(false)
		}
		p.state[c.id] = cpuRunning // keeps its run slot
		p.waiting[c.id] = nil
		// Leaving a section can only make other waiters grantable (it
		// never frees a run slot), so no slot-gate broadcast is needed.
		p.checkGateLocked()
		p.mu.Unlock()
	}()
	fn()
}

// checkGateLocked grants every waiter the protocol allows, in key
// order. Called with p.mu held after every transition that could make
// a waiter grantable: a CPU parking, finishing, or leaving a section.
func (p *phase) checkGateLocked() {
	if p.legacy {
		// Legacy global quiescence: one grant at a time, minimum key
		// first, only when no CPU is running, starting, or in a
		// section (active covers running and granted CPUs).
		if p.active > 0 || p.readyN > 0 {
			return
		}
		var best *syncWaiter
		for _, w := range p.waiting {
			if w == nil || w.granted {
				continue
			}
			if best == nil || w.at < best.at || (w.at == best.at && w.cpu < best.cpu) {
				best = w
			}
		}
		if best != nil {
			p.grantLocked(best)
		}
		return
	}
	if p.active >= p.slots {
		return
	}
	p.order = p.order[:0]
	for _, w := range p.waiting {
		if w != nil && !w.granted {
			p.order = append(p.order, w)
		}
	}
	if len(p.order) == 0 {
		return
	}
	sort.Slice(p.order, func(i, j int) bool {
		a, b := p.order[i], p.order[j]
		return a.at < b.at || (a.at == b.at && a.cpu < b.cpu)
	})
	for _, w := range p.order {
		if p.active >= p.slots {
			return
		}
		if p.grantableLocked(w) {
			p.grantLocked(w)
		}
	}
}

// grantLocked marks w granted, moves its CPU into its section, and
// charges it a run slot. The waiter's goroutine observes the flag
// under p.mu and proceeds.
func (p *phase) grantLocked(w *syncWaiter) {
	w.granted = true
	p.state[w.cpu] = cpuGranted
	p.active++
	if p.m.grantLog != nil {
		p.m.grantLog = append(p.m.grantLog, GrantRecord{At: w.at, CPU: w.cpu, Dom: w.dom})
	}
	w.wake <- struct{}{} // buffered; a waiter is granted at most once
}

// grantableLocked checks conditions 1–3 of the protocol for w (the
// caller checks slot availability). Only CPUs in w's sync group are
// inspected: domains never cross groups, so CPUs outside the group
// share no observable state with this section.
func (p *phase) grantableLocked(w *syncWaiter) bool {
	grp := p.m.groupMask(w.cpu)
	for j := 0; j < len(p.m.cpus); j++ {
		if j == w.cpu || !grp.Has(j) {
			continue
		}
		switch p.state[j] {
		case cpuDone:
			// Past every key, and its state can no longer change.
		case cpuParked:
			// j's next section is its parked key; it must come after
			// w. (Delivery into a parked domain CPU is safe: it runs
			// before j's own, later-keyed, section — the serial order.)
			wj := p.waiting[j]
			if wj.at < w.at || (wj.at == w.at && j < w.cpu) {
				return false
			}
		case cpuGranted:
			// An executing section. It must not overlap w's domain
			// (condition 3: an earlier-keyed overlapping section is
			// still mutating shared CPUs), j must not be in w's domain
			// (condition 1), and j's future sections must provably
			// come after w (condition 2, via the published clock —
			// the in-section clock may still be behind w's key even
			// though the section's own key was smaller).
			if p.waiting[j].dom.Intersects(w.dom) {
				return false
			}
			if w.dom.Has(j) || !p.pubPast(j, w) {
				return false
			}
		default: // cpuReady, cpuRunning
			// A free-running (or not yet started) CPU: it must not be
			// in w's domain (condition 1 — the section would mutate
			// state it is concurrently using; for a ready CPU, a
			// merge before its task starts would reorder against the
			// serial schedule), and its published clock must already
			// be past w's key (condition 2).
			if w.dom.Has(j) || !p.pubPast(j, w) {
				return false
			}
		}
	}
	return true
}

// pubPast reports whether CPU j's published clock proves its next sync
// key exceeds w's key: a CPU can sync no earlier than its current
// time, so (pub_j, j) lexicographically after (w.at, w.cpu) suffices.
// Published values only lag the true clock, which is conservative.
func (p *phase) pubPast(j int, w *syncWaiter) bool {
	pj := Time(p.m.pubs[j].Load())
	return pj > w.at || (pj == w.at && j > w.cpu)
}

// Ordered executes fn as CPU c with cross-CPU effects permitted within
// c's sync group. Outside a parallel phase this is simply
// SetCurrent(c); fn(). Inside one, fn becomes a sync point keyed by
// (c.Now(), c.ID()) whose domain is c's whole sync group — the whole
// machine by default — so legacy code that assumes serial interleaving
// stays correct under RunParallel. In-phase calls must come from c's
// own task goroutine.
func (m *Machine) Ordered(c *CPU, fn func()) {
	if c.mach != m {
		panic("sim: Ordered with a CPU from another machine")
	}
	if m.inFreePhase() {
		m.phase.syncPoint(c, c.Now(), m.groupMask(c.id), fn)
		return
	}
	m.cur = c
	fn()
}

// OrderedDomain executes fn as CPU c under a narrow sync domain: c
// plus the declared peers, which must all lie in c's sync group. In a
// parallel phase fn runs once the domain CPUs are parked and every
// group CPU is provably past the section's key; CPUs outside the
// domain keep free-running, so disjoint sections overlap. fn must
// confine itself to the domain CPUs' state (it runs without the
// machine-wide exclusive flag: no Current(), no forwarding kernel
// clock). Outside a phase it is SetCurrent(c); fn().
func (m *Machine) OrderedDomain(c *CPU, peers []*CPU, fn func()) {
	if c.mach != m {
		panic("sim: OrderedDomain with a CPU from another machine")
	}
	if m.inFreePhase() {
		var dom CPUSet
		dom.Add(c.id)
		for _, o := range peers {
			dom.Add(o.id)
		}
		m.phase.syncPoint(c, c.Now(), dom, fn)
		return
	}
	m.cur = c
	fn()
}

// GrantRecord is one granted sync section: its key and domain. Tests
// use the log to prove the grant-order property — sections over
// intersecting domains are granted in (time, id) order.
type GrantRecord struct {
	At  Time
	CPU int
	Dom CPUSet
}

// EnableGrantLog starts recording every granted sync section.
// Test-only: the log grows without bound.
func (m *Machine) EnableGrantLog() { m.grantLog = make([]GrantRecord, 0, 64) }

// GrantLog returns the recorded grants. The order is the host-side
// grant order; within any intersecting-domain subset it equals the
// virtual-time order.
func (m *Machine) GrantLog() []GrantRecord { return m.grantLog }

// IPIDelivery is one IPI delivery record: sender, receiver, and the
// send and receive completion times. Tests use the log to prove that
// host-parallel delivery order equals the serial Lamport order.
type IPIDelivery struct {
	From, To     int
	Send, Arrive Time
}

// EnableIPILog starts recording every IPI delivery. Test-only: the log
// grows without bound. It forces the legacy global-quiescence protocol
// so that deliveries are serialized and the log order is the global
// Lamport order (under sync domains, disjoint deliveries overlap and
// have no global order to record).
func (m *Machine) EnableIPILog() {
	m.ipiLog = make([]IPIDelivery, 0, 64)
	m.syncLegacy = true
}

// IPILog returns the recorded deliveries.
func (m *Machine) IPILog() []IPIDelivery { return m.ipiLog }

// ipiRecord appends to the delivery log if enabled. Only called from
// deliverIPI, which runs serially (out of phase) or under the
// exclusive grant (the log forces the legacy protocol), so no locking
// is needed.
func (m *Machine) ipiRecord(r IPIDelivery) {
	if m.ipiLog != nil {
		m.ipiLog = append(m.ipiLog, r)
	}
}

// mustNotFreePhase panics if shared machine state is touched while
// CPUs free-run concurrently.
func (m *Machine) mustNotFreePhase(what string) {
	if m.inFreePhase() {
		panic(fmt.Sprintf("sim: %s during a parallel phase outside an ordered section", what))
	}
}
