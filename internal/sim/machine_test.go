package sim

import (
	"strings"
	"testing"
)

func TestSincePanicsOnFutureStart(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Since with start after now did not panic")
		}
	}()
	var c Clock
	c.Advance(100)
	c.Since(200)
}

func TestNewMachineBasics(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 4, 1)
	if m.NumCPUs() != 4 {
		t.Fatalf("NumCPUs = %d", m.NumCPUs())
	}
	if m.BootCPU() != m.CPU(0) || m.Current() != m.CPU(0) {
		t.Fatal("boot CPU is not CPU 0 / not current")
	}
	for i, c := range m.CPUs() {
		if c.ID() != i || c.Machine() != m {
			t.Fatalf("CPU %d mislabeled", i)
		}
		if c.Now() != 0 {
			t.Fatalf("CPU %d clock not at zero", i)
		}
	}
}

func TestNewMachineRejectsZeroCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0-CPU machine accepted")
		}
	}()
	params := DefaultParams()
	NewMachine(&params, 0, 0)
}

func TestKernelClockForwardsToCurrentCPU(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 2, 0)
	kc := m.Clock()
	kc.Advance(100)
	m.SetCurrent(m.CPU(1))
	kc.Advance(30)
	if m.CPU(0).Now() != 100 || m.CPU(1).Now() != 30 {
		t.Fatalf("clocks = %v, %v; want 100, 30", m.CPU(0).Now(), m.CPU(1).Now())
	}
	if kc.Now() != 30 {
		t.Fatalf("kernel clock Now = %v, want current CPU's 30", kc.Now())
	}
	if m.Time() != 100 {
		t.Fatalf("machine time = %v, want max 100", m.Time())
	}
	if kc.Machine() != m || m.CPU(0).Clock().Machine() != m {
		t.Fatal("Clock.Machine does not resolve the owner")
	}
}

func TestSetCurrentRejectsForeignCPU(t *testing.T) {
	params := DefaultParams()
	m1 := NewMachine(&params, 1, 0)
	m2 := NewMachine(&params, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign CPU accepted")
		}
	}()
	m1.SetCurrent(m2.BootCPU())
}

func TestMachineOfAdoptsFreeClock(t *testing.T) {
	params := DefaultParams()
	clock := &Clock{}
	m := MachineOf(clock, &params)
	if m.NumCPUs() != 1 {
		t.Fatalf("implicit machine has %d CPUs", m.NumCPUs())
	}
	if m.BootCPU().Clock() != clock {
		t.Fatal("adopted clock is not the boot CPU's clock")
	}
	if MachineOf(clock, &params) != m {
		t.Fatal("second MachineOf built a different machine")
	}
	// Advancing the original clock advances the CPU.
	clock.Advance(42)
	if m.BootCPU().Now() != 42 {
		t.Fatalf("CPU did not track adopted clock: %v", m.BootCPU().Now())
	}
	// A machine-owned kernel clock resolves to its machine, not a new one.
	m2 := NewMachine(&params, 2, 0)
	if MachineOf(m2.Clock(), &params) != m2 {
		t.Fatal("MachineOf(kernel clock) built a new machine")
	}
}

func TestIPILamportMerge(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 3, 0)
	from, t1, t2 := m.CPU(0), m.CPU(1), m.CPU(2)
	from.Advance(10_000)
	t1.Advance(2_000)                      // behind the sender: merges forward
	t2.Advance(10_000 + 2*params.IPISend + // ahead of the send time already
		5_000)

	handled := 0
	m.IPI(from, []*CPU{t1, t2}, func(c *CPU) {
		handled++
		if m.Current() != c {
			t.Fatal("handler not running as the target CPU")
		}
		c.Advance(100)
	})
	if handled != 2 {
		t.Fatalf("handler ran %d times", handled)
	}
	send := Time(10_000 + 2*params.IPISend)
	want1 := send + params.IPIReceive + 100 // merged forward to send time
	want2 := send + 5_000 + params.IPIReceive + 100
	if t1.Now() != want1 {
		t.Fatalf("t1 = %v, want %v", t1.Now(), want1)
	}
	if t2.Now() != want2 {
		t.Fatalf("t2 = %v, want %v", t2.Now(), want2)
	}
	// The sender waits for the last acknowledgement.
	if from.Now() != want2 {
		t.Fatalf("sender = %v, want %v", from.Now(), want2)
	}
	if m.Current() != from {
		t.Fatal("current CPU not restored after IPI")
	}
	if from.Stats().Value("ipis_sent") != 2 {
		t.Fatalf("ipis_sent = %d", from.Stats().Value("ipis_sent"))
	}
	if t1.Stats().Value("ipis_received") != 1 || t2.Stats().Value("ipis_received") != 1 {
		t.Fatal("ipis_received miscounted")
	}
}

func TestIPIEmptyTargetSetIsFree(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 1, 0)
	m.IPI(m.BootCPU(), nil, func(*CPU) { t.Fatal("handler ran") })
	m.Broadcast(m.BootCPU(), func(*CPU) { t.Fatal("handler ran") })
	if m.BootCPU().Now() != 0 {
		t.Fatalf("empty IPI charged %v", m.BootCPU().Now())
	}
}

func TestIPIRejectsSelfTarget(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("self-targeted IPI accepted")
		}
	}()
	m.IPI(m.CPU(0), []*CPU{m.CPU(0)}, nil)
}

func TestPerCPURNGStreams(t *testing.T) {
	params := DefaultParams()
	a := NewMachine(&params, 2, 7)
	b := NewMachine(&params, 2, 7)
	// Same seed → identical per-CPU streams (determinism).
	for i := 0; i < 100; i++ {
		if a.CPU(0).RNG().Uint64() != b.CPU(0).RNG().Uint64() ||
			a.CPU(1).RNG().Uint64() != b.CPU(1).RNG().Uint64() {
			t.Fatal("per-CPU streams not reproducible")
		}
	}
	// Distinct CPUs → decorrelated streams.
	c := NewMachine(&params, 2, 7)
	same := 0
	for i := 0; i < 100; i++ {
		if c.CPU(0).RNG().Uint64() == c.CPU(1).RNG().Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("CPU streams coincide %d/100 times", same)
	}
}

func TestParamsDumpContainsIPIFields(t *testing.T) {
	p := DefaultParams()
	data, err := MarshalParams(&p)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"IPISend", "IPIReceive", "TLBFullFlush"} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("dump missing %s:\n%s", field, data)
		}
	}
	got, err := LoadParams(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got.IPISend != p.IPISend || got.IPIReceive != p.IPIReceive || got.TLBFullFlush != p.TLBFullFlush {
		t.Fatal("IPI costs lost in round trip")
	}
}
