package sim

import "sync/atomic"

// Sync telemetry: cheap package-global counters that expose barrier
// pressure — how often host-parallel CPUs had to stop, how long they
// waited, how wide the granted sync domains were, and how much TLB
// invalidation work was coalesced into batched IPI rounds. The
// counters are cumulative across machines; callers that want
// per-experiment numbers snapshot before and after (only meaningful
// when experiments run one at a time, mirroring the allocation
// accounting in internal/bench).

var telemetry struct {
	syncPoints      atomic.Uint64
	globalSections  atomic.Uint64
	domainCPUs      atomic.Uint64
	barrierWaitNs   atomic.Uint64
	ipiRounds       atomic.Uint64
	ipiTargets      atomic.Uint64
	coalescedInvals atomic.Uint64
}

// SyncTelemetry is a snapshot (or delta) of the sync counters.
type SyncTelemetry struct {
	// SyncPoints is the number of sync-point sections granted during
	// parallel phases; GlobalSections counts the subset whose domain
	// was the whole machine (legacy-protocol grants are always global).
	SyncPoints     uint64
	GlobalSections uint64

	// DomainCPUs is the sum of granted domain sizes; DomainCPUs /
	// SyncPoints is the mean number of CPUs a sync point stalled.
	DomainCPUs uint64

	// BarrierWaitNs is the total host (wall-clock) time CPU goroutines
	// spent parked waiting for a grant.
	BarrierWaitNs uint64

	// IPIRounds counts Machine.IPI calls with live targets; IPITargets
	// the total targets across them. CoalescedInvals is the number of
	// page invalidations folded into batched shootdown rounds by the
	// deferred-invalidation queues in vm and core.
	IPIRounds       uint64
	IPITargets      uint64
	CoalescedInvals uint64
}

// TelemetrySnapshot returns the current cumulative counter values.
func TelemetrySnapshot() SyncTelemetry {
	return SyncTelemetry{
		SyncPoints:      telemetry.syncPoints.Load(),
		GlobalSections:  telemetry.globalSections.Load(),
		DomainCPUs:      telemetry.domainCPUs.Load(),
		BarrierWaitNs:   telemetry.barrierWaitNs.Load(),
		IPIRounds:       telemetry.ipiRounds.Load(),
		IPITargets:      telemetry.ipiTargets.Load(),
		CoalescedInvals: telemetry.coalescedInvals.Load(),
	}
}

// Sub returns the delta t - prev, counter by counter.
func (t SyncTelemetry) Sub(prev SyncTelemetry) SyncTelemetry {
	return SyncTelemetry{
		SyncPoints:      t.SyncPoints - prev.SyncPoints,
		GlobalSections:  t.GlobalSections - prev.GlobalSections,
		DomainCPUs:      t.DomainCPUs - prev.DomainCPUs,
		BarrierWaitNs:   t.BarrierWaitNs - prev.BarrierWaitNs,
		IPIRounds:       t.IPIRounds - prev.IPIRounds,
		IPITargets:      t.IPITargets - prev.IPITargets,
		CoalescedInvals: t.CoalescedInvals - prev.CoalescedInvals,
	}
}

// AddCoalescedInvals records n page invalidations that were folded
// into one batched shootdown round. Called by the vm and core
// deferred-invalidation queues.
func AddCoalescedInvals(n int) {
	if n > 0 {
		telemetry.coalescedInvals.Add(uint64(n))
	}
}

// telAddGrant records one granted sync section.
func telAddGrant(domCPUs int, global bool, waitNs int64) {
	telemetry.syncPoints.Add(1)
	if global {
		telemetry.globalSections.Add(1)
	}
	telemetry.domainCPUs.Add(uint64(domCPUs))
	if waitNs > 0 {
		telemetry.barrierWaitNs.Add(uint64(waitNs))
	}
}

// telAddIPIRound records one IPI round with n targets.
func telAddIPIRound(n int) {
	telemetry.ipiRounds.Add(1)
	telemetry.ipiTargets.Add(uint64(n))
}
