package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
)

// CPU is one simulated processor: an execution context with its own
// virtual clock, its own deterministic random stream, and its own event
// counters. Every translation, fault, and map/unmap in the simulator is
// charged to the CPU that performed it.
type CPU struct {
	id    int
	mach  *Machine
	clock *Clock
	rng   *RNG
	stats *metrics.Set
}

// ID returns the CPU number, 0..NumCPUs-1.
func (c *CPU) ID() int { return c.id }

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.mach }

// Clock returns this CPU's own (non-forwarding) clock.
func (c *CPU) Clock() *Clock { return c.clock }

// RNG returns this CPU's deterministic random stream. Streams of
// distinct CPUs are decorrelated by seeding.
func (c *CPU) RNG() *RNG { return c.rng }

// Stats exposes per-CPU event counters: "ipis_sent", "ipis_received".
func (c *CPU) Stats() *metrics.Set { return c.stats }

// Now returns this CPU's current virtual time.
func (c *CPU) Now() Time { return c.clock.Now() }

// Advance moves this CPU's clock forward by d.
func (c *CPU) Advance(d Time) { c.clock.Advance(d) }

// AdvanceTo moves this CPU's clock forward to t if t is in the future.
func (c *CPU) AdvanceTo(t Time) { c.clock.AdvanceTo(t) }

// Machine is an N-CPU simulated machine. CPU clocks advance
// independently as work is charged to them and only synchronize at
// explicit communication points (IPI delivery and acknowledgement),
// giving a deterministic Lamport-style partial order of events.
//
// Outside a parallel phase the simulation is single-threaded: at any
// moment exactly one CPU is "executing" (the current CPU), and the
// machine's kernel clock — Clock() — forwards charges to it. Subsystems
// that predate the multi-core refactor keep their single *sim.Clock and
// transparently charge the right CPU. Machine.RunParallel additionally
// runs every CPU's context on host goroutines under a conservative
// synchronization protocol that keeps cross-CPU event order a pure
// function of virtual time (see parallel.go and DESIGN.md §11).
type Machine struct {
	params   *Params
	cpus     []*CPU
	cur      *CPU
	kclock   *Clock
	checks   []invariantCheck
	statSets []statsEntry

	// Host-parallel phase state (see parallel.go). phaseFlag and
	// exclFlag are atomics so the cheap guards in Clock.self,
	// Current, and SetCurrent can read them from any CPU goroutine;
	// exclFlag's value is stable for every possible reader because a
	// machine-wide section is granted only with every other CPU
	// parked. pubs mirrors each CPU's clock during a phase so the
	// sync-domain gate can lower-bound free-running CPUs without
	// stopping them.
	hostpar    bool
	syncLegacy bool
	phase      *phase
	phaseFlag  atomic.Bool
	exclFlag   atomic.Bool
	pubs       []atomic.Int64
	groupOf    []CPUSet // per-CPU sync group; nil = one machine-wide group
	ipiLog     []IPIDelivery
	grantLog   []GrantRecord
}

// invariantCheck is one registered consistency check. Checks run in
// registration order and charge no simulated time: they are tooling,
// not modelled kernel work.
type invariantCheck struct {
	name string
	fn   func() error
}

// NewMachine builds a machine with n CPUs (n >= 1). All CPU clocks
// start at zero; CPU 0 is the boot CPU and is current. Each CPU's RNG
// stream is derived deterministically from seed and the CPU number.
func NewMachine(params *Params, n int, seed uint64) *Machine {
	if n < 1 {
		panic(fmt.Sprintf("sim: machine needs at least one CPU, got %d", n))
	}
	m := &Machine{params: params}
	m.kclock = &Clock{mach: m, fwd: true}
	m.pubs = make([]atomic.Int64, n)
	for i := 0; i < n; i++ {
		m.cpus = append(m.cpus, &CPU{
			id:    i,
			mach:  m,
			clock: &Clock{mach: m, id: i},
			// The golden-ratio stride decorrelates per-CPU streams
			// while keeping them a pure function of (seed, id).
			rng:   NewRNG(seed + uint64(i)*0x9E3779B97F4A7C15),
			stats: metrics.NewSet(),
		})
	}
	m.cur = m.cpus[0]
	return m
}

// MachineOf returns the machine that owns clock. A free-standing clock
// (one not created by NewMachine) is adopted as the sole CPU of a new
// implicit single-CPU machine, which keeps the pre-SMP construction
// style — build a &sim.Clock{} and hand it to every subsystem —
// working unchanged.
func MachineOf(clock *Clock, params *Params) *Machine {
	if clock.mach != nil {
		return clock.mach
	}
	m := &Machine{params: params}
	m.kclock = &Clock{mach: m, fwd: true}
	m.pubs = make([]atomic.Int64, 1)
	cpu := &CPU{id: 0, mach: m, clock: clock, rng: NewRNG(0), stats: metrics.NewSet()}
	clock.mach = m
	m.cpus = []*CPU{cpu}
	m.cur = cpu
	return m
}

// Params returns the machine's cost table.
func (m *Machine) Params() *Params { return m.params }

// NumCPUs returns the number of CPUs.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// CPU returns CPU i.
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// CPUs returns all CPUs in ID order. The slice is shared; do not modify.
func (m *Machine) CPUs() []*CPU { return m.cpus }

// BootCPU returns CPU 0.
func (m *Machine) BootCPU() *CPU { return m.cpus[0] }

// Current returns the CPU currently executing. During a parallel
// phase's free-running window there is no single current CPU; calling
// this then is a bug (use the explicit executing-CPU parameter instead)
// and panics.
func (m *Machine) Current() *CPU {
	m.mustNotFreePhase("Current")
	return m.cur
}

// SetCurrent switches execution to c. Subsequent charges through the
// kernel clock land on c. c must belong to this machine. Panics during
// a parallel phase's free-running window (use Ordered instead).
func (m *Machine) SetCurrent(c *CPU) {
	if c.mach != m {
		panic("sim: SetCurrent with a CPU from another machine")
	}
	m.mustNotFreePhase("SetCurrent")
	m.cur = c
}

// Clock returns the machine's kernel clock: a forwarding clock whose
// operations apply to the current CPU's clock.
func (m *Machine) Clock() *Clock { return m.kclock }

// Time returns the machine-wide virtual time: the maximum over all CPU
// clocks. Benchmarks measure elapsed machine time so that work fanned
// out to many CPUs (e.g. shootdown handlers) is reflected in the total.
func (m *Machine) Time() Time {
	t := m.cpus[0].clock.now
	for _, c := range m.cpus[1:] {
		if c.clock.now > t {
			t = c.clock.now
		}
	}
	return t
}

// Sync advances every CPU's clock to the machine-wide maximum,
// modeling a synchronization barrier. Measurements of elapsed machine
// time (Time() deltas) must start from a synchronized state: work
// charged to a CPU that lags the global maximum would otherwise be
// masked by it. A no-op on a single-CPU machine.
func (m *Machine) Sync() {
	t := m.Time()
	for _, c := range m.cpus {
		c.clock.AdvanceTo(t)
	}
}

// Others returns every CPU except c, in ID order.
func (m *Machine) Others(c *CPU) []*CPU {
	out := make([]*CPU, 0, len(m.cpus)-1)
	for _, o := range m.cpus {
		if o != c {
			out = append(out, o)
		}
	}
	return out
}

// IPI models a synchronous inter-processor interrupt from one CPU to a
// set of targets, as used by TLB shootdown:
//
//   - the sender pays IPISend per target,
//   - each target's clock merges forward to the send time (it cannot
//     observe the interrupt before it was sent), pays IPIReceive, and
//     runs handler as the executing CPU,
//   - the sender then waits for all acknowledgements: its clock merges
//     forward to the latest target finish time.
//
// The merges are deterministic (targets are visited in ID order), so
// the resulting clock values are a pure function of the event history —
// a Lamport-style clock union. An empty target set costs nothing.
//
// During a parallel phase (Machine.RunParallel), an IPI with live
// targets is a sync point: the sender charges its send cost, then
// blocks until delivery is granted at key (send time, sender id) over
// the sync domain {sender} ∪ targets, so delivery order between
// overlapping shootdowns is identical to serial execution while
// disjoint shootdowns overlap. Inside an ordered section the targets
// are provably parked, so delivery is inline as in the serial case.
func (m *Machine) IPI(from *CPU, targets []*CPU, handler func(*CPU)) {
	if len(targets) == 0 {
		return
	}
	telAddIPIRound(len(targets))
	from.Advance(Time(len(targets)) * m.params.IPISend)
	send := from.Now()
	if m.inFreePhase() {
		var dom CPUSet
		dom.Add(from.id)
		for _, t := range targets {
			dom.Add(t.id)
		}
		m.phase.syncPoint(from, send, dom, func() {
			m.deliverIPI(from, targets, handler, send)
		})
		return
	}
	m.deliverIPI(from, targets, handler, send)
}

// deliverIPI performs the delivery half of IPI: targets merge forward
// to the send time, pay IPIReceive, run the handler as the executing
// CPU, and the sender finally merges to the latest finish time. Runs
// serially (out of phase), under a machine-wide exclusive grant, or
// inside a narrow-domain section — in the last case the current-CPU
// pointer is shared with concurrently free-running CPUs and must not
// be touched (handlers receive the target CPU explicitly).
func (m *Machine) deliverIPI(from *CPU, targets []*CPU, handler func(*CPU), send Time) {
	end := send
	touchCur := !m.inFreePhase()
	var prev *CPU
	if touchCur {
		prev = m.cur
	}
	for _, t := range targets {
		if t == from {
			panic("sim: IPI target includes the sender")
		}
		t.AdvanceTo(send)
		t.Advance(m.params.IPIReceive)
		t.stats.Counter("ipis_received").Inc()
		if handler != nil {
			if touchCur {
				m.cur = t
			}
			handler(t)
		}
		m.ipiRecord(IPIDelivery{From: from.id, To: t.id, Send: send, Arrive: t.Now()})
		if t.Now() > end {
			end = t.Now()
		}
	}
	if touchCur {
		m.cur = prev
	}
	from.stats.Counter("ipis_sent").Add(uint64(len(targets)))
	from.AdvanceTo(end)
}

// Broadcast sends an IPI from from to every other CPU.
func (m *Machine) Broadcast(from *CPU, handler func(*CPU)) {
	m.IPI(from, m.Others(from), handler)
}

// RegisterInvariants adds a named consistency check to the machine.
// Subsystems self-register at construction time so that a single
// Machine.CheckInvariants call validates the whole machine regardless
// of which subsystems a test happens to build.
func (m *Machine) RegisterInvariants(name string, fn func() error) {
	m.checks = append(m.checks, invariantCheck{name: name, fn: fn})
}

// CheckInvariants runs every registered check, in registration order,
// and returns the first failure wrapped with the registering
// subsystem's name. It advances no simulated clock: calling it between
// any two operations of a test must not perturb timing results.
func (m *Machine) CheckInvariants() error {
	for _, c := range m.checks {
		if err := c.fn(); err != nil {
			return fmt.Errorf("invariant %q: %w", c.name, err)
		}
	}
	return nil
}
