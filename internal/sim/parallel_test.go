package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// parallelWorkload is a seeded per-CPU task mixing local clock
// advances with cross-CPU broadcasts, used by the determinism tests.
// Each CPU's op stream is a pure function of (seed, cpu id).
func parallelWorkload(ops int, seed uint64) func(*CPU) error {
	return func(c *CPU) error {
		rng := NewRNG(seed + uint64(c.ID())*0x9E3779B97F4A7C15)
		m := c.Machine()
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				c.Advance(Time(1 + rng.Intn(500)))
			case 2:
				c.Stats().Counter("local_ops").Inc()
				c.Advance(Time(1 + rng.Intn(50)))
			case 3:
				m.Broadcast(c, func(t *CPU) {
					t.Advance(Time(7))
					t.Stats().Counter("handled").Inc()
				})
			}
		}
		return nil
	}
}

// runPhase executes the workload on a fresh machine and returns the
// machine for inspection.
func runPhase(t *testing.T, cpus int, hostpar bool, ops int, seed uint64) *Machine {
	t.Helper()
	params := DefaultParams()
	m := NewMachine(&params, cpus, seed)
	m.SetHostParallel(hostpar)
	m.EnableIPILog()
	if err := m.RunParallel(parallelWorkload(ops, seed)); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunParallelMatchesSerial is the tentpole property test: for the
// same seeded workload, serial (one run slot) and host-parallel (one
// goroutine per CPU) execution must produce identical machine state —
// every clock, every counter — and the identical IPI delivery log, in
// the identical order.
func TestRunParallelMatchesSerial(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			serial := runPhase(t, cpus, false, 400, seed)
			par := runPhase(t, cpus, true, 400, seed)
			if d := serial.CaptureState().Diff(par.CaptureState()); d != "" {
				t.Fatalf("cpus=%d seed=%d: state diverged:\n%s", cpus, seed, d)
			}
			if !reflect.DeepEqual(serial.IPILog(), par.IPILog()) {
				t.Fatalf("cpus=%d seed=%d: IPI delivery logs differ:\nserial: %v\nparallel: %v",
					cpus, seed, serial.IPILog(), par.IPILog())
			}
		}
	}
}

// TestIPIDeliveryIsLamportOrdered checks the protocol's ordering rule
// directly: deliveries appear in the log in nondecreasing (send time,
// sender id) order — the serial Lamport order — and each target's
// arrival is at least the send time plus the receive cost.
func TestIPIDeliveryIsLamportOrdered(t *testing.T) {
	params := DefaultParams()
	for _, hostpar := range []bool{false, true} {
		m := NewMachine(&params, 6, 99)
		m.SetHostParallel(hostpar)
		m.EnableIPILog()
		if err := m.RunParallel(parallelWorkload(300, 1234)); err != nil {
			t.Fatal(err)
		}
		log := m.IPILog()
		if len(log) == 0 {
			t.Fatal("workload generated no IPIs")
		}
		for i := 1; i < len(log); i++ {
			a, b := log[i-1], log[i]
			sameRound := a.From == b.From && a.Send == b.Send
			if sameRound {
				if b.To <= a.To {
					t.Fatalf("hostpar=%v: targets out of ID order at %d: %v then %v", hostpar, i, a, b)
				}
				continue
			}
			if b.Send < a.Send || (b.Send == a.Send && b.From < a.From) {
				t.Fatalf("hostpar=%v: deliveries out of (send, sender) order at %d: %v then %v", hostpar, i, a, b)
			}
		}
		for _, d := range log {
			if d.Arrive < d.Send+params.IPIReceive {
				t.Fatalf("hostpar=%v: delivery %v arrives before send+IPIReceive", hostpar, d)
			}
		}
	}
}

// TestRunParallelPropagatesErrors checks that a failing task surfaces
// its error (lowest CPU id wins) and the phase still drains cleanly.
func TestRunParallelPropagatesErrors(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 4, 1)
	m.SetHostParallel(true)
	errBoom := errors.New("boom")
	err := m.RunParallel(func(c *CPU) error {
		c.Advance(10)
		if c.ID() >= 2 {
			return fmt.Errorf("cpu %d: %w", c.ID(), errBoom)
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// The machine is reusable after a failed phase.
	if err := m.RunParallel(func(c *CPU) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestRunParallelPropagatesPanics checks that a panicking task is
// re-raised in the caller after the phase drains.
func TestRunParallelPropagatesPanics(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 4, 1)
	m.SetHostParallel(true)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	_ = m.RunParallel(func(c *CPU) error {
		if c.ID() == 3 {
			panic("task exploded")
		}
		c.Advance(5)
		return nil
	})
}

// TestOrderedSerializesSharedState checks that Ordered sections may
// touch shared machine state (the forwarding clock, SetCurrent) from a
// parallel phase, and that their execution order follows (time, id).
func TestOrderedSerializesSharedState(t *testing.T) {
	params := DefaultParams()
	type entry struct {
		CPU int
		At  Time
	}
	run := func(hostpar bool) []entry {
		m := NewMachine(&params, 4, 7)
		m.SetHostParallel(hostpar)
		var order []entry
		if err := m.RunParallel(func(c *CPU) error {
			// Stagger the clocks so the grant order is interesting:
			// CPU 3 reaches its section at the earliest time.
			c.Advance(Time(1000 * (4 - c.ID())))
			for i := 0; i < 3; i++ {
				m.Ordered(c, func() {
					// Inside the section the forwarding kernel clock is
					// legal and charges c.
					m.Clock().Advance(10)
					order = append(order, entry{CPU: c.ID(), At: c.Now()})
				})
				c.Advance(Time(100 * (1 + c.ID())))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return order
	}
	serial := run(false)
	par := run(true)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("ordered-section order diverged:\nserial: %v\nparallel: %v", serial, par)
	}
	if len(serial) != 12 {
		t.Fatalf("got %d entries, want 12", len(serial))
	}
	if serial[0].CPU != 3 {
		t.Fatalf("first section should run on CPU 3 (earliest clock), got %v", serial[0])
	}
}

// TestFreePhaseGuards checks that shared-state accessors panic during
// the free-running window instead of silently racing.
func TestFreePhaseGuards(t *testing.T) {
	params := DefaultParams()
	expectPanic := func(name string, fn func(c *CPU)) {
		m := NewMachine(&params, 2, 1)
		m.SetHostParallel(false)
		caught := false
		_ = m.RunParallel(func(c *CPU) error {
			defer func() {
				if recover() != nil {
					caught = true
				}
			}()
			fn(c)
			return nil
		})
		if !caught {
			t.Fatalf("%s did not panic during free-running phase", name)
		}
	}
	expectPanic("forwarding clock", func(c *CPU) { c.Machine().Clock().Advance(1) })
	expectPanic("SetCurrent", func(c *CPU) { c.Machine().SetCurrent(c) })
	expectPanic("Current", func(c *CPU) { _ = c.Machine().Current() })

	// On a single-CPU machine the forwarding clock stays legal in-phase:
	// there is only one possible current CPU, so forwarding is exact.
	m := NewMachine(&params, 1, 1)
	if err := m.RunParallel(func(c *CPU) error {
		m.Clock().Advance(5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m.BootCPU().Now() != 5 {
		t.Fatalf("single-CPU forwarded charge lost: now=%v", m.BootCPU().Now())
	}
}

// TestRunParallelRestoresCurrent checks the current CPU is restored
// after a phase regardless of what ran inside it.
func TestRunParallelRestoresCurrent(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 4, 1)
	m.SetCurrent(m.CPU(2))
	if err := m.RunParallel(func(c *CPU) error {
		m.Ordered(c, func() {})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m.Current() != m.CPU(2) {
		t.Fatalf("current CPU not restored: %d", m.Current().ID())
	}
}

// TestNestedRunParallelPanics pins the no-nesting contract.
func TestNestedRunParallelPanics(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("nested RunParallel did not panic")
		}
	}()
	_ = m.RunParallel(func(c *CPU) error {
		if c.ID() == 0 {
			_ = m.RunParallel(func(*CPU) error { return nil })
		}
		return nil
	})
}

// shardedWorkload is a seeded per-CPU task whose IPIs stay narrow —
// each CPU interrupts only its pair partner (id^1) — so the sharded
// gate grants pair sections concurrently while different pairs never
// barrier against each other.
func shardedWorkload(ops int, seed uint64) func(*CPU) error {
	return func(c *CPU) error {
		rng := NewRNG(seed + uint64(c.ID())*0x9E3779B97F4A7C15)
		m := c.Machine()
		partner := c.ID() ^ 1
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				c.Advance(Time(1 + rng.Intn(500)))
			case 2:
				c.Stats().Counter("local_ops").Inc()
				c.Advance(Time(1 + rng.Intn(50)))
			case 3:
				if partner < m.NumCPUs() {
					m.IPI(c, []*CPU{m.CPU(partner)}, func(t *CPU) {
						t.Advance(Time(7))
						t.Stats().Counter("handled").Inc()
					})
				}
			}
		}
		return nil
	}
}

// runSharded executes the pairwise workload under an explicit protocol
// selection and returns the machine.
func runSharded(t *testing.T, cpus int, hostpar, legacy bool, ops int, seed uint64, groups [][]int) *Machine {
	t.Helper()
	params := DefaultParams()
	m := NewMachine(&params, cpus, seed)
	m.SetHostParallel(hostpar)
	m.SetSyncLegacy(legacy)
	if groups != nil {
		m.SetSyncGroups(groups)
	}
	if err := m.RunParallel(shardedWorkload(ops, seed)); err != nil {
		t.Fatal(err)
	}
	return m
}

// pairGroups builds the {2i, 2i+1} sync-group partition.
func pairGroups(cpus int) [][]int {
	var groups [][]int
	for i := 0; i+1 < cpus; i += 2 {
		groups = append(groups, []int{i, i + 1})
	}
	return groups
}

// TestShardedMatchesSerialAndLegacy is the sharded protocol's
// byte-identity matrix: for the same seeded workload, the legacy
// (global-quiescence) protocol and the sharded sync-domain protocol,
// each both serial and host-parallel, and the sharded protocol with
// explicit pair sync groups, must all produce identical machine state.
func TestShardedMatchesSerialAndLegacy(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			ref := runSharded(t, cpus, false, true, 400, seed, nil)
			for _, run := range []struct {
				name    string
				hostpar bool
				legacy  bool
				groups  [][]int
			}{
				{"legacy-hostpar", true, true, nil},
				{"sharded-serial", false, false, nil},
				{"sharded-hostpar", true, false, nil},
				{"sharded-hostpar-groups", true, false, pairGroups(cpus)},
			} {
				m := runSharded(t, cpus, run.hostpar, run.legacy, 400, seed, run.groups)
				if d := ref.CaptureState().Diff(m.CaptureState()); d != "" {
					t.Fatalf("cpus=%d seed=%d: %s diverged from legacy-serial:\n%s", cpus, seed, run.name, d)
				}
			}
		}
	}
}

// TestShardedGrantOrderWithinDomains is the ISSUE's property test: in
// the grant log of a sharded host-parallel run, any two sections with
// intersecting sync domains must have been granted in ascending
// (simulated time, CPU id) order — the serial order. Disjoint sections
// may interleave arbitrarily.
func TestShardedGrantOrderWithinDomains(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		params := DefaultParams()
		m := NewMachine(&params, 8, seed)
		m.SetHostParallel(true)
		m.SetSyncGroups(pairGroups(8))
		m.EnableGrantLog()
		if err := m.RunParallel(shardedWorkload(300, seed)); err != nil {
			t.Fatal(err)
		}
		log := m.GrantLog()
		if len(log) == 0 {
			t.Fatal("workload generated no sync points")
		}
		for i := 0; i < len(log); i++ {
			for j := i + 1; j < len(log); j++ {
				a, b := log[i], log[j]
				if !a.Dom.Intersects(b.Dom) {
					continue
				}
				if b.At < a.At || (b.At == a.At && b.CPU < a.CPU) {
					t.Fatalf("seed=%d: intersecting sections granted out of key order: (%d,%d,%s) before (%d,%d,%s)",
						seed, a.At, a.CPU, a.Dom, b.At, b.CPU, b.Dom)
				}
			}
		}
	}
}

// TestSyncGroupEscapePanics: an IPI whose target set crosses the
// caller's sync group has no ordering guarantee and must panic rather
// than silently desynchronize.
func TestSyncGroupEscapePanics(t *testing.T) {
	params := DefaultParams()
	m := NewMachine(&params, 4, 1)
	m.SetHostParallel(true)
	m.SetSyncGroups([][]int{{0, 1}, {2, 3}})
	err := m.RunParallel(func(c *CPU) error {
		if c.ID() != 0 {
			return nil
		}
		defer func() {
			if recover() == nil {
				t.Error("cross-group IPI did not panic")
			}
		}()
		m.IPI(c, []*CPU{m.CPU(2)}, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
