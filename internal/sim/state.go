package sim

import (
	"fmt"

	"repro/internal/metrics"
)

// State returns the RNG's internal state word. Together with the
// xorshift64* update rule the word determines the entire future output
// stream, so capturing it (and every clock and counter) pins a
// machine's forward behaviour exactly — the property snapshots rely on.
func (r *RNG) State() uint64 { return r.state }

// CounterValue is one named counter's value at capture time.
type CounterValue struct {
	Name  string
	Value uint64
}

// CPUState is the captured execution state of one CPU: its virtual
// clock, its RNG state word, and its event counters (in first-use
// order, which is deterministic because the simulation is).
type CPUState struct {
	ID       int
	Clock    Time
	RNG      uint64
	Counters []CounterValue
}

// StatsState is the captured counter set of one registered subsystem.
type StatsState struct {
	Name     string
	Counters []CounterValue
}

// MachineState is a point-in-time capture of everything that
// determines a machine's forward behaviour at the simulation level:
// per-CPU clocks, RNG states, and counters, the current CPU, and every
// subsystem counter set registered via RegisterStats. Two machines
// whose MachineStates are equal (and whose memory contents agree) are
// bit-identical going forward under the same operation sequence.
type MachineState struct {
	Current int
	CPUs    []CPUState
	Stats   []StatsState
}

// statsEntry is one subsystem counter set registered for capture.
type statsEntry struct {
	name string
	set  *metrics.Set
}

// RegisterStats adds a named counter set to the machine's capture
// surface, mirroring RegisterInvariants: subsystems self-register at
// construction time so a single CaptureState sees every event counter
// on the machine regardless of which subsystems a caller built.
func (m *Machine) RegisterStats(name string, set *metrics.Set) {
	m.statSets = append(m.statSets, statsEntry{name: name, set: set})
}

// captureSet snapshots a counter set in first-use order.
func captureSet(s *metrics.Set) []CounterValue {
	names := s.Names()
	out := make([]CounterValue, len(names))
	for i, n := range names {
		out[i] = CounterValue{Name: n, Value: s.Value(n)}
	}
	return out
}

// CaptureState records the machine's execution state. Like
// CheckInvariants it advances no simulated clock: capturing is tooling,
// not modelled kernel work, so a capture between any two operations
// must not perturb the run.
func (m *Machine) CaptureState() *MachineState {
	st := &MachineState{Current: m.cur.id}
	for _, c := range m.cpus {
		st.CPUs = append(st.CPUs, CPUState{
			ID:       c.id,
			Clock:    c.clock.now,
			RNG:      c.rng.state,
			Counters: captureSet(c.stats),
		})
	}
	for _, e := range m.statSets {
		st.Stats = append(st.Stats, StatsState{Name: e.name, Counters: captureSet(e.set)})
	}
	return st
}

// Diff compares two captures and returns a description of the first
// difference, or "" if they are identical. It is the equality oracle
// behind snapshot verification: restore proofs demand an empty diff.
func (s *MachineState) Diff(o *MachineState) string {
	if s.Current != o.Current {
		return fmt.Sprintf("current CPU %d vs %d", s.Current, o.Current)
	}
	if len(s.CPUs) != len(o.CPUs) {
		return fmt.Sprintf("%d CPUs vs %d", len(s.CPUs), len(o.CPUs))
	}
	for i := range s.CPUs {
		a, b := &s.CPUs[i], &o.CPUs[i]
		if a.ID != b.ID {
			return fmt.Sprintf("cpu %d: id %d vs %d", i, a.ID, b.ID)
		}
		if a.Clock != b.Clock {
			return fmt.Sprintf("cpu %d: clock %d vs %d", a.ID, a.Clock, b.Clock)
		}
		if a.RNG != b.RNG {
			return fmt.Sprintf("cpu %d: rng state %#x vs %#x", a.ID, a.RNG, b.RNG)
		}
		if d := diffCounters(fmt.Sprintf("cpu %d", a.ID), a.Counters, b.Counters); d != "" {
			return d
		}
	}
	if len(s.Stats) != len(o.Stats) {
		return fmt.Sprintf("%d stat sets vs %d", len(s.Stats), len(o.Stats))
	}
	for i := range s.Stats {
		a, b := &s.Stats[i], &o.Stats[i]
		if a.Name != b.Name {
			return fmt.Sprintf("stat set %d: name %q vs %q", i, a.Name, b.Name)
		}
		if d := diffCounters(a.Name, a.Counters, b.Counters); d != "" {
			return d
		}
	}
	return ""
}

func diffCounters(who string, a, b []CounterValue) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s: %d counters vs %d", who, len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return fmt.Sprintf("%s: counter %d named %q vs %q", who, i, a[i].Name, b[i].Name)
		}
		if a[i].Value != b[i].Value {
			return fmt.Sprintf("%s: counter %q = %d vs %d", who, a[i].Name, a[i].Value, b[i].Value)
		}
	}
	return ""
}
