package sim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Advance(Microsecond)
	if got, want := c.Now(), Time(1100); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockSince(t *testing.T) {
	var c Clock
	c.Advance(500)
	start := c.Now()
	c.Advance(250)
	if got := c.Since(start); got != 250 {
		t.Fatalf("Since = %v, want 250", got)
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeMicroseconds(t *testing.T) {
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Fatalf("Microseconds = %v, want 2.5", got)
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsZeroCost(t *testing.T) {
	p := DefaultParams()
	p.FaultOverhead = 0
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted zero FaultOverhead")
	}
}

func TestReadPerPagePositive(t *testing.T) {
	p := DefaultParams()
	if p.ReadPerPage() <= 0 {
		t.Fatalf("ReadPerPage = %v, want positive", p.ReadPerPage())
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGUint64nProperty(t *testing.T) {
	r := NewRNG(123)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParamsJSONRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.FaultOverhead = 9999
	data, err := MarshalParams(&p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, p)
	}
}

func TestLoadParamsPartial(t *testing.T) {
	got, err := LoadParams(strings.NewReader(`{"FaultOverhead": 5000}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.FaultOverhead != 5000 {
		t.Fatalf("override lost: %d", got.FaultOverhead)
	}
	if got.PTEWrite != DefaultParams().PTEWrite {
		t.Fatal("unset fields should keep defaults")
	}
}

func TestLoadParamsRejectsBadInput(t *testing.T) {
	if _, err := LoadParams(strings.NewReader(`{"NotAField": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadParams(strings.NewReader(`{"FaultOverhead": 0}`)); err == nil {
		t.Fatal("invalid (zero) cost accepted")
	}
	if _, err := LoadParams(strings.NewReader(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
